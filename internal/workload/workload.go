// Package workload generates synthetic instruction traces that stand in for
// the PowerPC SPEC2K traces used by the paper (§4.5). The original traces
// are proprietary IBM artifacts; each benchmark here is replaced by a
// parameterised generator whose instruction mix, instruction-level
// parallelism, memory-locality structure, code footprint, and branch
// predictability are tuned so that the simulated IPC and power on the
// 180nm base machine track Table 3 of the paper.
//
// The generators are deterministic: the same profile and seed always yield
// the same trace, which keeps experiments and tests reproducible.
package workload

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"math/rand"

	"github.com/ramp-sim/ramp/internal/trace"
)

// Suite labels a benchmark as integer or floating-point SPEC2K.
type Suite uint8

// Benchmark suites.
const (
	SuiteInt Suite = iota + 1
	SuiteFP
)

// String returns the paper's name for the suite.
func (s Suite) String() string {
	switch s {
	case SuiteInt:
		return "SpecInt"
	case SuiteFP:
		return "SpecFP"
	default:
		return fmt.Sprintf("suite(%d)", uint8(s))
	}
}

// Mix gives the fraction of dynamic instructions in each class. Fractions
// must be non-negative and sum to 1 (within rounding).
type Mix struct {
	IntALU float64
	IntMul float64
	IntDiv float64
	FPOp   float64
	FPDiv  float64
	Load   float64
	Store  float64
	Branch float64
	LCR    float64
}

// Sum returns the total of all fractions.
func (m Mix) Sum() float64 {
	return m.IntALU + m.IntMul + m.IntDiv + m.FPOp + m.FPDiv +
		m.Load + m.Store + m.Branch + m.LCR
}

// Validate checks that the mix is a proper distribution with a non-zero
// branch fraction (the control-flow skeleton requires branches).
func (m Mix) Validate() error {
	fracs := []float64{
		m.IntALU, m.IntMul, m.IntDiv, m.FPOp, m.FPDiv,
		m.Load, m.Store, m.Branch, m.LCR,
	}
	for _, f := range fracs {
		// The explicit non-finite check matters: NaN compares false against
		// every bound below and would otherwise slip through.
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return fmt.Errorf("workload: non-finite mix fraction %v", f)
		}
		if f < 0 {
			return fmt.Errorf("workload: negative mix fraction %v", f)
		}
	}
	if s := m.Sum(); s < 0.999 || s > 1.001 {
		return fmt.Errorf("workload: mix sums to %v, want 1", s)
	}
	if m.Branch <= 0 {
		return fmt.Errorf("workload: branch fraction must be positive")
	}
	return nil
}

// Profile parameterises one synthetic benchmark.
type Profile struct {
	// Name is the SPEC2K benchmark this profile emulates.
	Name string
	// Suite is SpecInt or SpecFP.
	Suite Suite
	// Mix is the dynamic instruction-class distribution.
	Mix Mix
	// DepDist is the mean register-dependency distance in instructions;
	// smaller values create longer dependence chains and lower ILP.
	DepDist float64
	// NearDepProb is the probability that a source operand depends on a
	// recently produced value (versus a long-dead, always-ready value).
	NearDepProb float64
	// HotBytes, WarmBytes are the sizes of the L1-resident and L2-resident
	// data working sets. Cold accesses stream beyond the L2.
	HotBytes, WarmBytes uint64
	// WarmProb and ColdProb are the probabilities that a memory access
	// falls in the warm (L2) and cold (memory) regions; the remainder hits
	// the hot set. They control the L1/L2 miss rates.
	WarmProb, ColdProb float64
	// CodeBlocks is the number of static basic blocks; together with the
	// branch fraction it sets the instruction footprint seen by the L1 I-cache.
	CodeBlocks int
	// BranchPredictability in [0.5, 1] is the asymptotic accuracy a good
	// dynamic predictor can reach on this benchmark: static branch biases
	// are drawn so that the mean max(p, 1-p) equals this value.
	BranchPredictability float64
	// LoopProb is the probability that a taken branch targets an earlier
	// block (loop-back) rather than a forward block.
	LoopProb float64
	// TargetIPC and TargetPowerW record the paper's Table 3 operating
	// point for the 180nm base machine (for calibration reporting only).
	TargetIPC    float64
	TargetPowerW float64
	// PhaseInstrs, when positive, alternates the generator between a
	// compute-biased and a memory-biased program phase every PhaseInstrs
	// instructions, reproducing the coarse temporal behaviour variation of
	// real programs ("small [thermal] cycles which occur at a much higher
	// frequency, due to variations in application behavior", §2). Zero
	// disables phases; the calibrated Table 3 profiles ship with phases
	// off so their operating points stay pinned.
	PhaseInstrs int64
	// PhaseMemScale (> 1) multiplies the warm/cold access probabilities
	// during the memory phase; the compute phase divides by it, keeping
	// the whole-trace average behaviour near the base profile.
	PhaseMemScale float64
	// Seed makes the generated trace deterministic per benchmark.
	Seed int64
}

// Validate checks profile parameters for consistency.
func (p Profile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("workload: profile needs a name")
	}
	if p.Suite != SuiteInt && p.Suite != SuiteFP {
		return fmt.Errorf("workload: profile %q: invalid suite", p.Name)
	}
	if err := p.Mix.Validate(); err != nil {
		return fmt.Errorf("workload: profile %q: %w", p.Name, err)
	}
	// NaN parameters compare false against every range bound, so every
	// bracketed field is checked with the accepting comparison inverted:
	// !(lo <= v && v <= hi) rejects NaN along with out-of-range values.
	if !(p.DepDist >= 1) || math.IsInf(p.DepDist, 0) {
		return fmt.Errorf("workload: profile %q: DepDist %v not a finite value >= 1", p.Name, p.DepDist)
	}
	if !(p.NearDepProb >= 0 && p.NearDepProb <= 1) {
		return fmt.Errorf("workload: profile %q: NearDepProb out of [0,1]", p.Name)
	}
	if !(p.WarmProb >= 0 && p.ColdProb >= 0 && p.WarmProb+p.ColdProb <= 1) {
		return fmt.Errorf("workload: profile %q: invalid warm/cold probabilities", p.Name)
	}
	// Working-set sizes feed rand.Int63n, which panics on non-positive
	// arguments: sizes above MaxInt64 would wrap negative.
	if p.HotBytes == 0 || p.WarmBytes == 0 {
		return fmt.Errorf("workload: profile %q: working-set sizes must be positive", p.Name)
	}
	if p.HotBytes > math.MaxInt64 || p.WarmBytes > math.MaxInt64 {
		return fmt.Errorf("workload: profile %q: working-set sizes exceed 2^63-1 bytes", p.Name)
	}
	if p.CodeBlocks < 2 {
		return fmt.Errorf("workload: profile %q: need at least 2 code blocks", p.Name)
	}
	// The CFG is materialised per block; cap the footprint so a corrupt
	// profile cannot demand an unbounded allocation.
	if p.CodeBlocks > 1<<22 {
		return fmt.Errorf("workload: profile %q: %d code blocks exceeds the 2^22 cap", p.Name, p.CodeBlocks)
	}
	if !(p.BranchPredictability >= 0.5 && p.BranchPredictability <= 1) {
		return fmt.Errorf("workload: profile %q: predictability out of [0.5,1]", p.Name)
	}
	if !(p.LoopProb >= 0 && p.LoopProb <= 1) {
		return fmt.Errorf("workload: profile %q: LoopProb out of [0,1]", p.Name)
	}
	if p.PhaseInstrs < 0 {
		return fmt.Errorf("workload: profile %q: negative PhaseInstrs", p.Name)
	}
	if p.PhaseInstrs > 0 {
		if !(p.PhaseMemScale > 1) || math.IsInf(p.PhaseMemScale, 0) {
			return fmt.Errorf("workload: profile %q: PhaseMemScale must be a finite value above 1 with phases on", p.Name)
		}
		if (p.WarmProb+p.ColdProb)*p.PhaseMemScale > 1 {
			return fmt.Errorf("workload: profile %q: memory-phase probabilities exceed 1", p.Name)
		}
	}
	return nil
}

// Register name-space layout within trace.NumArchRegs: integer registers
// and FP registers occupy disjoint ranges, mimicking a RISC ISA.
const (
	_intRegBase  = 1
	_intRegCount = 32
	_fpRegBase   = 128
	_fpRegCount  = 32
)

// block is one static basic block of the synthetic control-flow graph.
type block struct {
	startPC   uint64
	length    int     // instructions including the terminating branch
	takenBias float64 // probability the terminating branch is taken
	target    int     // block index jumped to when taken
}

// Generator produces the synthetic instruction stream for a profile. It
// implements trace.Stream. Create with New; the zero value is not usable.
type Generator struct {
	prof      Profile
	rng       *rand.Rand
	blocks    []block
	cur       int // current block index
	pos       int // position within current block
	recentInt []uint16
	recentFP  []uint16
	riPos     int
	rfPos     int
	coldPtr   uint64
	remaining int64
	produced  int64
	// genCount/genMem tally instructions actually generated (not skipped)
	// and how many were loads or stores, giving SkipWarm the stream's
	// dynamic memory-access rate. The static Mix underestimates the branch
	// fraction — block lengths vary around 1/Mix.Branch and the dynamic
	// rate is the frequency-weighted mean of 1/length — so the dynamic
	// memory rate runs a few percent below Mix.Load+Mix.Store on
	// branch-heavy profiles.
	genCount int64
	genMem   int64
}

var (
	_ trace.Stream      = (*Generator)(nil)
	_ trace.Skipper     = (*Generator)(nil)
	_ trace.WarmSkipper = (*Generator)(nil)
)

// New builds a deterministic generator for profile p producing n
// instructions (n <= 0 means unbounded).
func New(p Profile, n int64) (*Generator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(p.Seed))
	g := &Generator{
		prof:      p,
		rng:       rng,
		recentInt: make([]uint16, 16),
		recentFP:  make([]uint16, 16),
		remaining: n,
	}
	for i := range g.recentInt {
		g.recentInt[i] = uint16(_intRegBase + i%_intRegCount)
	}
	for i := range g.recentFP {
		g.recentFP[i] = uint16(_fpRegBase + i%_fpRegCount)
	}
	g.buildCFG()
	return g, nil
}

// buildCFG lays out the static basic blocks. Block lengths are sampled
// around 1/branchFraction so the dynamic branch fraction matches the mix.
func (g *Generator) buildCFG() {
	p := g.prof
	meanLen := 1 / p.Mix.Branch
	g.blocks = make([]block, p.CodeBlocks)
	pc := uint64(0x1000)
	for i := range g.blocks {
		// Lengths vary ±50% around the mean, minimum 2 (one body
		// instruction plus the branch).
		l := int(meanLen * (0.5 + g.rng.Float64()))
		if l < 2 {
			l = 2
		}
		g.blocks[i].startPC = pc
		g.blocks[i].length = l
		pc += uint64(l) * 4
	}
	for i := range g.blocks {
		g.blocks[i].takenBias = g.sampleBias()
		g.blocks[i].target = g.sampleTarget(i)
	}
}

// sampleBias draws a static branch bias such that the expected best-case
// prediction accuracy E[max(b, 1-b)] equals the profile's predictability.
func (g *Generator) sampleBias() float64 {
	// With probability q the branch is strongly biased (accuracy ~0.98),
	// otherwise weakly biased (accuracy ~0.62). Solve q for the target.
	const strong, weak = 0.98, 0.62
	q := (g.prof.BranchPredictability - weak) / (strong - weak)
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	var acc float64
	if g.rng.Float64() < q {
		acc = strong
	} else {
		acc = weak
	}
	// Convert accuracy to a bias on either side of 0.5.
	if g.rng.Float64() < 0.5 {
		return acc // mostly taken
	}
	return 1 - acc // mostly not-taken
}

// sampleTarget picks the taken-branch destination for block i: a loop-back
// to a nearby earlier block with probability LoopProb, otherwise a forward
// jump to a random later block.
func (g *Generator) sampleTarget(i int) int {
	n := len(g.blocks)
	if g.rng.Float64() < g.prof.LoopProb {
		back := 1 + g.rng.Intn(8)
		t := i - back
		if t < 0 {
			t = 0
		}
		return t
	}
	fwd := 1 + g.rng.Intn(8)
	return (i + fwd) % n
}

// Next produces the next instruction of the stream.
func (g *Generator) Next() (trace.Instruction, error) {
	if g.remaining == 0 {
		return trace.Instruction{}, io.EOF
	}
	b := &g.blocks[g.cur]
	pc := b.startPC + uint64(g.pos)*4
	var in trace.Instruction
	if g.pos == b.length-1 {
		in = g.makeBranch(pc, b)
		// Advance control flow.
		if in.Taken {
			g.cur = b.target
		} else {
			g.cur = (g.cur + 1) % len(g.blocks)
		}
		g.pos = 0
	} else {
		in = g.makeBody(pc)
		g.pos++
	}
	if g.remaining > 0 {
		g.remaining--
	}
	g.produced++
	g.genCount++
	if in.Class == trace.ClassLoad || in.Class == trace.ClassStore {
		g.genMem++
	}
	return in, nil
}

// Produced returns the number of instructions generated so far.
func (g *Generator) Produced() int64 { return g.produced }

// Skip discards up to n upcoming instructions in O(1), implementing
// trace.Skipper for systematic sampling. The generator advances its
// position counters — the phase schedule (phaseScale) and the cold-stream
// pointer are driven by absolute trace position, so memory/compute phases
// stay aligned across skips — while the control-flow walk, dependency
// rings, and RNG carry over unchanged: the next window continues the walk
// where the previous one stopped. Restarting the walk at a skip-derived
// random block was tried first and rejected — it destroys the reuse
// structure the I-cache and branch predictor have learned, biasing the
// sampled IPC far below a contiguous run's. No random draws happen during
// a skip, so the post-skip state depends only on the windows actually
// generated, never on how the skip was chunked — sampled runs stay
// bit-reproducible.
func (g *Generator) Skip(n int64) (int64, error) {
	if n <= 0 {
		return 0, nil
	}
	if g.remaining == 0 {
		return 0, io.EOF
	}
	if g.remaining > 0 && n > g.remaining {
		n = g.remaining
	}
	g.produced += n
	if g.remaining > 0 {
		g.remaining -= n
	}
	// Advance the cold-stream pointer as if the skipped instructions had
	// issued their expected share of cold accesses (one line each).
	coldAccesses := float64(n) * (g.prof.Mix.Load + g.prof.Mix.Store) * g.prof.ColdProb
	g.coldPtr += 64 * uint64(coldAccesses)
	return n, nil
}

// SkipWarm discards up to n upcoming instructions like Skip, but replays
// the span's expected memory traffic into w, implementing
// trace.WarmSkipper. Skip keeps cache contents frozen across the gap;
// over long skips that freezes an evolution — the cold stream churning
// the L2, the warm set refreshing its recency — that in a contiguous run
// takes on the order of a million instructions to reach steady state, so
// every window behind the gap observes biased miss rates. SkipWarm drives
// that evolution statistically: each skipped position draws "was this a
// memory access, which region, load or store" from a splitmix64 hash of
// (seed, absolute position) — not from g.rng — and feeds the resulting
// address to w. Position-keyed draws make the replay a pure function of
// which positions were skipped, so chunked and whole-gap skips leave
// bit-identical generator and cache state, preserving Skip's
// reproducibility guarantee. The cold-stream pointer advances per
// replayed cold access (superseding Skip's bulk estimate) so the warmed
// lines and the pointer agree.
func (g *Generator) SkipWarm(n int64, w trace.MemWarmer) (int64, error) {
	if w == nil {
		return g.Skip(n)
	}
	if n <= 0 {
		return 0, nil
	}
	if g.remaining == 0 {
		return 0, io.EOF
	}
	if g.remaining > 0 && n > g.remaining {
		n = g.remaining
	}
	// Replay at the stream's measured dynamic memory-access rate once
	// enough instructions have been observed; the static Mix rate seeds the
	// estimate before that. Within one gap no instructions are generated
	// between chunks, so the rate — like the position-keyed draws — is
	// identical however the gap is chunked.
	memProb := g.prof.Mix.Load + g.prof.Mix.Store
	if g.genCount >= 4096 {
		memProb = float64(g.genMem) / float64(g.genCount)
	}
	var storeProb float64
	if m := g.prof.Mix.Load + g.prof.Mix.Store; m > 0 {
		storeProb = g.prof.Mix.Store / m
	}
	// The replay runs for every skipped instruction, so the draws are
	// integer threshold compares on hash bits rather than float64
	// conversions, and region offsets use a multiply-high (Lemire)
	// reduction rather than a 64-bit modulo. Thresholds for the two phase
	// parities are precomputed; built-in profiles have phases off.
	const unit = 1 << 53
	memThresh := uint64(memProb * unit)
	storeThresh := uint64(storeProb * (1 << 11))
	mkThresh := func(scale float64) (cold, warm uint64) {
		c := g.prof.ColdProb * scale
		return uint64(c * unit), uint64((c + g.prof.WarmProb*scale) * unit)
	}
	coldEven, warmEven := mkThresh(g.phaseScaleAt(0))
	coldOdd, warmOdd := coldEven, warmEven
	if g.prof.PhaseInstrs > 0 {
		coldOdd, warmOdd = mkThresh(g.prof.PhaseMemScale)
	}
	const golden = 0x9e3779b97f4a7c15
	x := uint64(g.prof.Seed) + uint64(g.produced)*golden
	for i := int64(0); i < n; i++ {
		h := splitmix64(x)
		x += golden
		if h>>11 >= memThresh {
			continue
		}
		coldT, warmT := coldEven, warmEven
		if g.prof.PhaseInstrs > 0 && ((g.produced+i)/g.prof.PhaseInstrs)&1 == 1 {
			coldT, warmT = coldOdd, warmOdd
		}
		store := h&(1<<11-1) < storeThresh
		h2 := splitmix64(h)
		var addr uint64
		switch r := h2 >> 11; {
		case r < coldT:
			g.coldPtr += 64
			addr = coldBase + g.coldPtr&(1<<30-1)
		case r < warmT:
			hi, _ := bits.Mul64(splitmix64(h2), g.prof.WarmBytes)
			addr = warmBase + hi&^7
		default:
			hi, _ := bits.Mul64(splitmix64(h2), g.prof.HotBytes)
			addr = hotBase + hi&^7
		}
		w.WarmAccess(addr, store)
	}
	g.produced += n
	if g.remaining > 0 {
		g.remaining -= n
	}
	return n, nil
}

// splitmix64 is the SplitMix64 finaliser: a bijective mixer cheap enough
// to derive several independent draws per skipped instruction.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func (g *Generator) makeBranch(pc uint64, b *block) trace.Instruction {
	in := trace.Instruction{
		PC:    pc,
		Class: trace.ClassBranch,
		Src1:  g.pickSource(false),
		Taken: g.rng.Float64() < b.takenBias,
	}
	if in.Taken {
		in.Target = g.blocks[b.target].startPC
	}
	return in
}

// makeBody samples a non-branch instruction from the mix.
func (g *Generator) makeBody(pc uint64) trace.Instruction {
	m := g.prof.Mix
	nonBranch := m.Sum() - m.Branch
	x := g.rng.Float64() * nonBranch
	switch {
	case x < m.IntALU:
		return g.makeALU(pc, trace.ClassIntALU)
	case x < m.IntALU+m.IntMul:
		return g.makeALU(pc, trace.ClassIntMul)
	case x < m.IntALU+m.IntMul+m.IntDiv:
		return g.makeALU(pc, trace.ClassIntDiv)
	case x < m.IntALU+m.IntMul+m.IntDiv+m.FPOp:
		return g.makeFP(pc, trace.ClassFPOp)
	case x < m.IntALU+m.IntMul+m.IntDiv+m.FPOp+m.FPDiv:
		return g.makeFP(pc, trace.ClassFPDiv)
	case x < m.IntALU+m.IntMul+m.IntDiv+m.FPOp+m.FPDiv+m.Load:
		return g.makeLoad(pc)
	case x < m.IntALU+m.IntMul+m.IntDiv+m.FPOp+m.FPDiv+m.Load+m.Store:
		return g.makeStore(pc)
	default:
		return g.makeLCR(pc)
	}
}

func (g *Generator) makeALU(pc uint64, c trace.Class) trace.Instruction {
	in := trace.Instruction{
		PC:    pc,
		Class: c,
		Src1:  g.pickSource(false),
		Src2:  g.pickSource(false),
		Dest:  g.newDest(false),
	}
	return in
}

func (g *Generator) makeFP(pc uint64, c trace.Class) trace.Instruction {
	return trace.Instruction{
		PC:    pc,
		Class: c,
		Src1:  g.pickSource(true),
		Src2:  g.pickSource(true),
		Dest:  g.newDest(true),
	}
}

func (g *Generator) makeLoad(pc uint64) trace.Instruction {
	fp := g.prof.Suite == SuiteFP && g.rng.Float64() < 0.7
	return trace.Instruction{
		PC:    pc,
		Class: trace.ClassLoad,
		Addr:  g.dataAddress(),
		Src1:  g.pickSource(false), // address base register
		Dest:  g.newDest(fp),
	}
}

func (g *Generator) makeStore(pc uint64) trace.Instruction {
	fp := g.prof.Suite == SuiteFP && g.rng.Float64() < 0.7
	return trace.Instruction{
		PC:    pc,
		Class: trace.ClassStore,
		Addr:  g.dataAddress(),
		Src1:  g.pickSource(false), // address base register
		Src2:  g.pickSource(fp),    // stored value
	}
}

func (g *Generator) makeLCR(pc uint64) trace.Instruction {
	return trace.Instruction{
		PC:    pc,
		Class: trace.ClassLCR,
		Src1:  g.pickSource(false),
		Dest:  g.newDest(false),
	}
}

// phaseScale returns the current multiplier on the warm/cold access
// probabilities: >1 in the memory phase, <1 in the compute phase, 1 with
// phases disabled.
func (g *Generator) phaseScale() float64 { return g.phaseScaleAt(g.produced) }

// phaseScaleAt evaluates the phase schedule at absolute trace position p.
func (g *Generator) phaseScaleAt(p int64) float64 {
	if g.prof.PhaseInstrs <= 0 {
		return 1
	}
	if (p/g.prof.PhaseInstrs)%2 == 1 {
		return g.prof.PhaseMemScale
	}
	return 1 / g.prof.PhaseMemScale
}

// Disjoint base addresses of the three-level data-locality model, shared
// by demand generation (dataAddress) and skip-span warming (SkipWarm).
const (
	hotBase  = 0x1000_0000
	warmBase = 0x2000_0000
	coldBase = 0x4000_0000
)

// dataAddress draws an effective address from the three-level locality
// model: hot (L1-resident), warm (L2-resident), or cold (streaming past
// the L2). Regions are disjoint so cache behaviour is controllable.
func (g *Generator) dataAddress() uint64 {
	scale := g.phaseScale()
	warmProb := g.prof.WarmProb * scale
	coldProb := g.prof.ColdProb * scale
	x := g.rng.Float64()
	switch {
	case x < coldProb:
		// Stream through a region far larger than the L2 in cache-line
		// steps so every access is a fresh line.
		g.coldPtr += 64
		return coldBase + g.coldPtr%(1<<30)
	case x < coldProb+warmProb:
		off := uint64(g.rng.Int63n(int64(g.prof.WarmBytes))) &^ 7
		return warmBase + off
	default:
		off := uint64(g.rng.Int63n(int64(g.prof.HotBytes))) &^ 7
		return hotBase + off
	}
}

// pickSource chooses a source register: near (recently written, likely
// in flight) with probability NearDepProb, else a stable old value.
func (g *Generator) pickSource(fp bool) uint16 {
	recent, pos := g.recentInt, g.riPos
	base, count := uint16(_intRegBase), _intRegCount
	if fp {
		recent, pos = g.recentFP, g.rfPos
		base, count = uint16(_fpRegBase), _fpRegCount
	}
	if g.rng.Float64() < g.prof.NearDepProb {
		// Geometric distance with the profile's mean, capped by the
		// recent-ring size.
		d := 1
		for float64(d) < float64(len(recent)) && g.rng.Float64() > 1/g.prof.DepDist {
			d++
		}
		idx := (pos - d + 2*len(recent)) % len(recent)
		return recent[idx]
	}
	return base + uint16(g.rng.Intn(count))
}

// newDest allocates the next destination register round-robin and records
// it in the recent ring used for dependency construction.
func (g *Generator) newDest(fp bool) uint16 {
	if fp {
		reg := uint16(_fpRegBase + int(g.rfPos)%_fpRegCount)
		g.recentFP[g.rfPos%len(g.recentFP)] = reg
		g.rfPos++
		return reg
	}
	reg := uint16(_intRegBase + int(g.riPos)%_intRegCount)
	g.recentInt[g.riPos%len(g.recentInt)] = reg
	g.riPos++
	return reg
}
