package workload

import (
	"sync"
	"testing"
)

func TestDefaultRegistry(t *testing.T) {
	r := DefaultRegistry()
	want := Names()
	got := r.Names()
	if len(got) != len(want) {
		t.Fatalf("registry holds %d names, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("name[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	p, ok := r.Lookup("crafty")
	if !ok || p.Name != "crafty" || p.Suite != SuiteInt {
		t.Errorf("Lookup(crafty) = %+v, %v", p, ok)
	}
	if _, ok := r.Lookup("nonesuch"); ok {
		t.Error("Lookup(nonesuch) succeeded")
	}
}

func TestRegistryResolve(t *testing.T) {
	r := DefaultRegistry()
	all, err := r.Resolve(nil)
	if err != nil || len(all) != len(Profiles()) {
		t.Fatalf("Resolve(nil) = %d profiles, err %v", len(all), err)
	}
	subset, err := r.Resolve([]string{"gcc", "ammp"})
	if err != nil {
		t.Fatal(err)
	}
	if len(subset) != 2 || subset[0].Name != "gcc" || subset[1].Name != "ammp" {
		t.Errorf("Resolve order not preserved: %v", []string{subset[0].Name, subset[1].Name})
	}
	if _, err := r.Resolve([]string{"gcc", "nonesuch"}); err == nil {
		t.Error("Resolve with unknown name did not fail")
	}
}

func TestRegistryRegisterRejects(t *testing.T) {
	r := DefaultRegistry()
	if err := r.Register(Profiles()[0]); err == nil {
		t.Error("duplicate registration did not fail")
	}
	if err := r.Register(Profile{Name: "bad"}); err == nil {
		t.Error("invalid profile registration did not fail")
	}
	custom := Profiles()[0]
	custom.Name = "custom"
	if err := r.Register(custom); err != nil {
		t.Errorf("valid custom profile rejected: %v", err)
	}
	if _, ok := r.Lookup("custom"); !ok {
		t.Error("registered custom profile not found")
	}
}

// TestRegistryConcurrency exercises the lock paths under -race.
func TestRegistryConcurrency(t *testing.T) {
	r := DefaultRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Lookup("gcc")
				r.Names()
				r.Resolve([]string{"ammp"})
			}
		}()
	}
	wg.Wait()
}
