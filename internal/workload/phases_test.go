package workload

import (
	"errors"
	"io"
	"testing"
)

// phasedProfile returns a gzip variant with program phases enabled.
func phasedProfile(t *testing.T) Profile {
	t.Helper()
	p, err := ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	p.PhaseInstrs = 50_000
	p.PhaseMemScale = 5
	return p
}

func TestPhasedProfileValidates(t *testing.T) {
	p := phasedProfile(t)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPhaseValidationRejections(t *testing.T) {
	p := phasedProfile(t)
	p.PhaseInstrs = -1
	if err := p.Validate(); err == nil {
		t.Error("negative PhaseInstrs accepted")
	}
	p = phasedProfile(t)
	p.PhaseMemScale = 1.0
	if err := p.Validate(); err == nil {
		t.Error("PhaseMemScale of 1 with phases on accepted")
	}
	p = phasedProfile(t)
	p.WarmProb = 0.3
	p.PhaseMemScale = 5 // 0.3·5 > 1
	if err := p.Validate(); err == nil {
		t.Error("memory-phase probability above 1 accepted")
	}
}

// windowMemFractions counts the warm+cold access fraction of the memory
// operations in each consecutive window of the trace.
func windowMemFractions(t *testing.T, p Profile, total int64, window int64) []float64 {
	t.Helper()
	g, err := New(p, total)
	if err != nil {
		t.Fatal(err)
	}
	var fractions []float64
	var mem, nonHot int64
	var produced int64
	for {
		in, err := g.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		produced++
		if in.Class.IsMem() {
			mem++
			if in.Addr >= 0x2000_0000 {
				nonHot++
			}
		}
		if produced%window == 0 {
			if mem > 0 {
				fractions = append(fractions, float64(nonHot)/float64(mem))
			}
			mem, nonHot = 0, 0
		}
	}
	return fractions
}

func TestPhasesAlternateMemoryBehaviour(t *testing.T) {
	p := phasedProfile(t)
	fr := windowMemFractions(t, p, 400_000, p.PhaseInstrs)
	if len(fr) < 6 {
		t.Fatalf("only %d windows measured", len(fr))
	}
	// Odd windows (memory phase) must have clearly more warm/cold traffic
	// than even windows (compute phase).
	var even, odd float64
	var nEven, nOdd int
	for i, f := range fr {
		if i%2 == 0 {
			even += f
			nEven++
		} else {
			odd += f
			nOdd++
		}
	}
	even /= float64(nEven)
	odd /= float64(nOdd)
	if odd < 3*even {
		t.Fatalf("memory-phase miss traffic %.4f not well above compute-phase %.4f", odd, even)
	}
}

func TestPhasesOffIsUniform(t *testing.T) {
	p, err := ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	fr := windowMemFractions(t, p, 400_000, 50_000)
	lo, hi := fr[0], fr[0]
	for _, f := range fr {
		if f < lo {
			lo = f
		}
		if f > hi {
			hi = f
		}
	}
	if hi > 4*lo+0.02 {
		t.Fatalf("unphased trace shows phase-like variation: windows %.4f..%.4f", lo, hi)
	}
}

func TestPhasedTraceStillValid(t *testing.T) {
	g, err := New(phasedProfile(t), 100_000)
	if err != nil {
		t.Fatal(err)
	}
	for {
		in, err := g.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := in.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestShippedProfilesHavePhasesOff(t *testing.T) {
	// The calibrated Table 3 profiles must not drift: phases ship disabled.
	for _, p := range Profiles() {
		if p.PhaseInstrs != 0 {
			t.Errorf("%s ships with phases enabled", p.Name)
		}
	}
}
