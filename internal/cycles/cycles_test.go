package cycles

import (
	"math"
	"testing"
)

func totalCount(cs []Cycle) float64 {
	var sum float64
	for _, c := range cs {
		sum += c.Count
	}
	return sum
}

func TestTurningPoints(t *testing.T) {
	tp := turningPoints([]float64{1, 2, 3, 2, 1, 2, 2, 2, 1})
	want := []float64{1, 3, 1, 2, 1}
	if len(tp) != len(want) {
		t.Fatalf("turning points = %v, want %v", tp, want)
	}
	for i := range want {
		if tp[i] != want[i] {
			t.Fatalf("turning points = %v, want %v", tp, want)
		}
	}
}

func TestTurningPointsDegenerate(t *testing.T) {
	if tp := turningPoints(nil); tp != nil {
		t.Fatal("nil series must return nil")
	}
	if tp := turningPoints([]float64{5}); len(tp) != 1 {
		t.Fatalf("single point: %v", tp)
	}
	if tp := turningPoints([]float64{5, 5, 5}); len(tp) != 1 {
		t.Fatalf("flat series: %v", tp)
	}
}

func TestRainflowASTMExample(t *testing.T) {
	// The classic ASTM E1049 example series (scaled as temperatures):
	// peaks/valleys -2, 1, -3, 5, -1, 3, -4, 4, -2 produce ranges
	// 3(½), 4(½), 4(1), 8(½), 6(½), 8(½), 9(½), 6(½)... the canonical
	// counts: range 3×0.5, 4×1.5, 6×0.5, 8×1.0, 9×0.5.
	series := []float64{-2, 1, -3, 5, -1, 3, -4, 4, -2}
	cycles := Rainflow(series)
	counts := map[float64]float64{}
	for _, c := range cycles {
		counts[c.RangeK] += c.Count
	}
	want := map[float64]float64{3: 0.5, 4: 1.5, 6: 0.5, 8: 1.0, 9: 0.5}
	for r, n := range want {
		if math.Abs(counts[r]-n) > 1e-12 {
			t.Errorf("range %v: count %v, want %v (all: %v)", r, counts[r], n, counts)
		}
	}
	if got, wantTotal := totalCount(cycles), 4.0; math.Abs(got-wantTotal) > 1e-12 {
		t.Errorf("total count %v, want %v", got, wantTotal)
	}
}

func TestRainflowSingleSwing(t *testing.T) {
	cycles := Rainflow([]float64{300, 320})
	if len(cycles) != 1 || cycles[0].RangeK != 20 || cycles[0].Count != 0.5 {
		t.Fatalf("single swing: %+v", cycles)
	}
	if cycles[0].MeanK != 310 {
		t.Fatalf("mean = %v, want 310", cycles[0].MeanK)
	}
}

func TestRainflowRepeatedTriangleWave(t *testing.T) {
	// N identical triangles → ~N full cycles of the same range.
	var series []float64
	for i := 0; i < 50; i++ {
		series = append(series, 350, 360)
	}
	series = append(series, 350)
	cycles := Rainflow(series)
	var full float64
	for _, c := range cycles {
		if c.RangeK != 10 {
			t.Fatalf("unexpected range %v", c.RangeK)
		}
		full += c.Count
	}
	if full < 49 || full > 51 {
		t.Fatalf("triangle wave counted %v cycles, want ≈ 50", full)
	}
}

func TestRainflowFlatSeriesNoCycles(t *testing.T) {
	if cycles := Rainflow([]float64{350, 350, 350}); len(cycles) != 0 {
		t.Fatalf("flat series produced cycles: %+v", cycles)
	}
}

func TestAnalyze(t *testing.T) {
	var series []float64
	for i := 0; i < 100; i++ {
		series = append(series, 350, 358)
	}
	s, err := Analyze(series, 10, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if s.Cycles < 99 || s.Cycles > 101 {
		t.Fatalf("cycles = %v", s.Cycles)
	}
	if s.MaxRangeK != 8 || math.Abs(s.MeanRangeK-8) > 1e-9 {
		t.Fatalf("ranges: max %v mean %v", s.MaxRangeK, s.MeanRangeK)
	}
	// Damage index: ~100 × 8^2.35 / 10s.
	want := s.Cycles * math.Pow(8, 2.35) / 10
	if math.Abs(s.DamageIndex-want) > 1e-9 {
		t.Fatalf("damage index %v, want %v", s.DamageIndex, want)
	}
}

func TestAnalyzeNoiseFloor(t *testing.T) {
	series := []float64{350, 350.05, 350, 350.05, 350} // below the 0.1K floor
	s, err := Analyze(series, 1, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if s.Cycles != 0 || s.DamageIndex != 0 {
		t.Fatalf("sub-floor swings counted: %+v", s)
	}
}

func TestAnalyzeDamageGrowsSuperlinearlyWithRange(t *testing.T) {
	mk := func(amplitude float64) []float64 {
		var series []float64
		for i := 0; i < 100; i++ {
			series = append(series, 350, 350+amplitude)
		}
		return series
	}
	small, err := Analyze(mk(4), 1, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	large, err := Analyze(mk(8), 1, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	ratio := large.DamageIndex / small.DamageIndex
	want := math.Pow(2, 2.35)
	if math.Abs(ratio/want-1) > 0.01 {
		t.Fatalf("doubling amplitude scaled damage by %v, want %v", ratio, want)
	}
}

func TestAnalyzeRejections(t *testing.T) {
	if _, err := Analyze([]float64{1, 2}, 0, DefaultParams()); err == nil {
		t.Error("zero duration accepted")
	}
	bad := DefaultParams()
	bad.Q = 0
	if _, err := Analyze([]float64{1, 2}, 1, bad); err == nil {
		t.Error("zero exponent accepted")
	}
	bad = DefaultParams()
	bad.MinRangeK = -1
	if _, err := Analyze([]float64{1, 2}, 1, bad); err == nil {
		t.Error("negative floor accepted")
	}
}
