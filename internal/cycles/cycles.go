// Package cycles analyses small thermal cycles — the high-frequency
// temperature oscillations caused by variations in application behaviour.
// The paper models only large (power-on/off) cycles and notes that "the
// effect of small thermal cycles has not been well studied and validated
// models are not available" (§2). This package provides the measurement
// half of that open problem: rainflow cycle counting (ASTM E1049) over a
// simulated temperature trace, and a Coffin-Manson damage *index* that
// ranks workloads and technologies by small-cycle stress. The index is
// relative — absolute FIT calibration would require exactly the validated
// models the paper says do not exist.
package cycles

import (
	"fmt"
	"math"
)

// Cycle is one counted thermal cycle.
type Cycle struct {
	// RangeK is the peak-to-valley temperature swing.
	RangeK float64
	// MeanK is the cycle's mean temperature.
	MeanK float64
	// Count is 1.0 for a full cycle, 0.5 for a residual half cycle.
	Count float64
}

// turningPoints reduces a series to its alternating local extrema,
// dropping equal neighbours.
func turningPoints(series []float64) []float64 {
	if len(series) == 0 {
		return nil
	}
	tp := make([]float64, 0, len(series))
	tp = append(tp, series[0])
	for i := 1; i < len(series)-1; i++ {
		prev, cur, next := series[i-1], series[i], series[i+1]
		if (cur > prev && cur >= next) || (cur < prev && cur <= next) {
			tp = append(tp, cur)
		}
	}
	if len(series) > 1 {
		tp = append(tp, series[len(series)-1])
	}
	// Remove consecutive duplicates introduced by flat segments.
	out := tp[:1]
	for _, v := range tp[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

// Rainflow counts the thermal cycles in a temperature series using the
// ASTM E1049-85 rainflow algorithm. Unclosed residual ranges are reported
// as half cycles.
func Rainflow(series []float64) []Cycle {
	tp := turningPoints(series)
	var out []Cycle
	var stack []float64
	for _, point := range tp {
		stack = append(stack, point)
		for len(stack) >= 3 {
			n := len(stack)
			x := math.Abs(stack[n-1] - stack[n-2])
			y := math.Abs(stack[n-2] - stack[n-3])
			if x < y {
				break
			}
			if n == 3 {
				// Range Y contains the series start: half cycle.
				out = append(out, Cycle{
					RangeK: y,
					MeanK:  (stack[0] + stack[1]) / 2,
					Count:  0.5,
				})
				stack = append(stack[:0], stack[1], stack[2])
			} else {
				// Interior range: full cycle; remove its two points.
				out = append(out, Cycle{
					RangeK: y,
					MeanK:  (stack[n-2] + stack[n-3]) / 2,
					Count:  1,
				})
				stack = append(stack[:n-3], stack[n-1])
			}
		}
	}
	// Residuals: each remaining range is a half cycle.
	for i := 0; i+1 < len(stack); i++ {
		out = append(out, Cycle{
			RangeK: math.Abs(stack[i+1] - stack[i]),
			MeanK:  (stack[i+1] + stack[i]) / 2,
			Count:  0.5,
		})
	}
	return out
}

// Params configures the small-cycle damage index.
type Params struct {
	// Q is the Coffin-Manson exponent for small cycles; solder-fatigue
	// analyses use the same 2.35 as the package model by default.
	Q float64
	// MinRangeK ignores cycles below this swing (measurement noise and
	// elastic-only deformation).
	MinRangeK float64
}

// DefaultParams returns the package Coffin-Manson exponent with a 0.1K
// noise floor.
func DefaultParams() Params {
	return Params{Q: 2.35, MinRangeK: 0.1}
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if p.Q <= 0 {
		return fmt.Errorf("cycles: exponent must be positive")
	}
	if p.MinRangeK < 0 {
		return fmt.Errorf("cycles: negative noise floor")
	}
	return nil
}

// Summary aggregates a rainflow analysis.
type Summary struct {
	// Cycles is the total cycle count above the noise floor.
	Cycles float64
	// MaxRangeK and MeanRangeK describe the counted swings.
	MaxRangeK, MeanRangeK float64
	// DamageIndex is Σ count·ΔT^q per second of simulated time — a
	// relative Coffin-Manson stress measure for comparing workloads,
	// technologies, and mitigation policies.
	DamageIndex float64
}

// Analyze runs rainflow counting over a temperature series spanning
// durationSeconds of simulated time and returns the damage summary.
func Analyze(series []float64, durationSeconds float64, p Params) (Summary, error) {
	if err := p.Validate(); err != nil {
		return Summary{}, err
	}
	if durationSeconds <= 0 {
		return Summary{}, fmt.Errorf("cycles: duration must be positive")
	}
	var s Summary
	var rangeSum float64
	for _, c := range Rainflow(series) {
		if c.RangeK < p.MinRangeK {
			continue
		}
		s.Cycles += c.Count
		rangeSum += c.RangeK * c.Count
		if c.RangeK > s.MaxRangeK {
			s.MaxRangeK = c.RangeK
		}
		s.DamageIndex += c.Count * math.Pow(c.RangeK, p.Q)
	}
	if s.Cycles > 0 {
		s.MeanRangeK = rangeSum / s.Cycles
	}
	s.DamageIndex /= durationSeconds
	return s, nil
}
