package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/ramp-sim/ramp/internal/report"
	"github.com/ramp-sim/ramp/internal/scaling"
	"github.com/ramp-sim/ramp/internal/sim"
	"github.com/ramp-sim/ramp/internal/workload"
)

// newTestServer builds a server around a stubbed simulation. The stub
// returns a minimal coherent StudyResult; tests that need real numbers use
// TestServerServesRealStudy instead.
func newTestServer(t *testing.T, mutate func(*Config)) *Server {
	t.Helper()
	cfg := Config{
		Sim:            sim.DefaultConfig(),
		CacheSize:      8,
		MaxQueue:       4,
		ComputeTimeout: time.Minute,
	}
	cfg.Sim.Instructions = 50_000
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// stubResult fabricates the smallest StudyResult the renderers accept.
func stubResult(cfg sim.Config, techs []scaling.Technology) *sim.StudyResult {
	return &sim.StudyResult{Config: cfg, Techs: techs, Worst: make([]sim.WorstCase, len(techs))}
}

// get issues a request against the handler and decodes the JSON envelope.
func get(t *testing.T, s *Server, target string) (*httptest.ResponseRecorder, map[string]json.RawMessage) {
	t.Helper()
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, target, nil))
	var body map[string]json.RawMessage
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("%s: bad JSON response %q: %v", target, rec.Body.String(), err)
	}
	return rec, body
}

// meta extracts the StudyMeta from a study/mttf response body.
func meta(t *testing.T, body map[string]json.RawMessage) StudyMeta {
	t.Helper()
	var m StudyMeta
	if err := json.Unmarshal(body["meta"], &m); err != nil {
		t.Fatalf("bad meta: %v", err)
	}
	return m
}

// TestConcurrentIdenticalRequestsCoalesce is the acceptance scenario: two
// concurrent identical /v1/study requests run exactly one simulation and
// the coalesce counter reads 1; a repeated request afterwards is a cache
// hit with ~zero compute.
func TestConcurrentIdenticalRequestsCoalesce(t *testing.T) {
	s := newTestServer(t, nil)
	var calls atomic.Int64
	release := make(chan struct{})
	s.runStudy = func(ctx context.Context, cfg sim.Config, profiles []workload.Profile,
		techs []scaling.Technology, opts sim.StudyOptions) (*sim.StudyResult, error) {
		calls.Add(1)
		<-release
		return stubResult(cfg, techs), nil
	}

	const target = "/v1/study?apps=ammp&techs=130nm"
	var wg sync.WaitGroup
	codes := make([]int, 2)
	metas := make([]StudyMeta, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rec, body := get(t, s, target)
			codes[i] = rec.Code
			if rec.Code == http.StatusOK {
				metas[i] = meta(t, body)
			}
		}()
	}
	for calls.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	// Give the second request time to join the open flight, then let the
	// one simulation finish.
	for s.metrics.Coalesced.Value() == 0 {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if codes[0] != http.StatusOK || codes[1] != http.StatusOK {
		t.Fatalf("status codes = %v, want 200s", codes)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("simulations run = %d, want 1", got)
	}
	if got := s.metrics.Coalesced.Value(); got != 1 {
		t.Errorf("coalesce counter = %d, want 1", got)
	}
	if metas[0].Key == "" || metas[0].Key != metas[1].Key {
		t.Errorf("request keys disagree: %q vs %q", metas[0].Key, metas[1].Key)
	}

	// Repeat: must be a cache hit served without touching the simulator.
	rec, body := get(t, s, target)
	if rec.Code != http.StatusOK {
		t.Fatalf("cache-hit request status %d", rec.Code)
	}
	m := meta(t, body)
	if m.Cache != "hit" {
		t.Errorf("repeat request cache = %q, want hit", m.Cache)
	}
	if m.ComputeMS >= 1 {
		t.Errorf("cache hit took %.3fms of compute, want <1ms", m.ComputeMS)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("cache hit re-ran the simulation (calls=%d)", got)
	}
	if st := s.cache.Stats(); st.Hits < 1 {
		t.Errorf("cache hits = %d, want >=1", st.Hits)
	}
}

// TestHundredConcurrentIdenticalRequests hammers one key with 100
// concurrent requests under the race detector: exactly one simulation, 99
// coalesced followers, all served the same result.
func TestHundredConcurrentIdenticalRequests(t *testing.T) {
	s := newTestServer(t, nil)
	var calls atomic.Int64
	s.runStudy = func(ctx context.Context, cfg sim.Config, profiles []workload.Profile,
		techs []scaling.Technology, opts sim.StudyOptions) (*sim.StudyResult, error) {
		calls.Add(1)
		time.Sleep(50 * time.Millisecond) // hold the flight open for the stragglers
		return stubResult(cfg, techs), nil
	}

	const n = 100
	start := make(chan struct{})
	var wg sync.WaitGroup
	var ok atomic.Int64
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			rec := httptest.NewRecorder()
			s.Handler().ServeHTTP(rec,
				httptest.NewRequest(http.MethodGet, "/v1/study?apps=gcc&techs=90nm", nil))
			if rec.Code == http.StatusOK {
				ok.Add(1)
			}
		}()
	}
	close(start)
	wg.Wait()

	if got := ok.Load(); got != n {
		t.Errorf("%d/%d requests succeeded", got, n)
	}
	// Every request either led the one flight, joined it, hit the cache
	// the flight filled, or (rarely) led a fresh flight whose double-check
	// found the cached value — never a second simulation.
	if got := calls.Load(); got != 1 {
		t.Errorf("simulations run = %d, want 1", got)
	}
	hits := s.cache.Stats().Hits
	coalesced := s.metrics.Coalesced.Value()
	if total := coalesced + hits; total > n-1 || total < n-10 {
		t.Errorf("coalesced(%d) + cache hits(%d) = %d, want ~%d", coalesced, hits, total, n-1)
	}
}

// TestAdmissionQueueSheds proves distinct concurrent studies beyond
// MaxQueue are rejected with 429 + Retry-After while admitted work is
// unaffected.
func TestAdmissionQueueSheds(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.MaxQueue = 1; c.RetryAfter = 3 * time.Second })
	release := make(chan struct{})
	s.runStudy = func(ctx context.Context, cfg sim.Config, profiles []workload.Profile,
		techs []scaling.Technology, opts sim.StudyOptions) (*sim.StudyResult, error) {
		<-release
		return stubResult(cfg, techs), nil
	}

	first := make(chan int, 1)
	go func() {
		rec, _ := get(t, s, "/v1/study?apps=ammp")
		first <- rec.Code
	}()
	// Wait until the first study holds the only admission slot.
	for len(s.admission) == 0 {
		time.Sleep(time.Millisecond)
	}

	rec, body := get(t, s, "/v1/study?apps=gcc")
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("overload status = %d, want 429 (body %s)", rec.Code, rec.Body.String())
	}
	// The hint is queue-aware and jittered: with the admission queue full
	// (load 1.0) it scales the 3s base by 3× ±25%, so 7–12s after ceiling.
	if ra, err := strconv.Atoi(rec.Header().Get("Retry-After")); err != nil || ra < 7 || ra > 12 {
		t.Errorf("Retry-After = %q, want 7..12s (3s base × full-queue scaling ± jitter)",
			rec.Header().Get("Retry-After"))
	}
	if _, hasErr := body["error"]; !hasErr {
		t.Error("429 body carries no error field")
	}
	if got := s.metrics.Shed.Value(); got != 1 {
		t.Errorf("shed counter = %d, want 1", got)
	}

	close(release)
	if code := <-first; code != http.StatusOK {
		t.Errorf("admitted request status = %d, want 200", code)
	}
}

// TestDeadlineExceededDoesNotPoisonCache proves a study that dies on the
// compute deadline is not cached, and the next identical request computes
// fresh and succeeds.
func TestDeadlineExceededDoesNotPoisonCache(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.ComputeTimeout = 20 * time.Millisecond })
	var calls atomic.Int64
	s.runStudy = func(ctx context.Context, cfg sim.Config, profiles []workload.Profile,
		techs []scaling.Technology, opts sim.StudyOptions) (*sim.StudyResult, error) {
		if calls.Add(1) == 1 {
			<-ctx.Done() // simulate a run that overruns its deadline
			return nil, ctx.Err()
		}
		return stubResult(cfg, techs), nil
	}

	rec, _ := get(t, s, "/v1/study?apps=ammp")
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("deadline-exceeded status = %d, want 504", rec.Code)
	}
	if got := s.cache.Len(); got != 0 {
		t.Fatalf("failed study was cached (entries=%d)", got)
	}

	rec, body := get(t, s, "/v1/study?apps=ammp")
	if rec.Code != http.StatusOK {
		t.Fatalf("retry status = %d, want 200", rec.Code)
	}
	if m := meta(t, body); m.Cache != "miss" {
		t.Errorf("retry cache = %q, want miss", m.Cache)
	}
	if got := calls.Load(); got != 2 {
		t.Errorf("simulations = %d, want 2", got)
	}
}

// TestRequestValidation walks the 4xx paths.
func TestRequestValidation(t *testing.T) {
	s := newTestServer(t, nil)
	s.runStudy = func(ctx context.Context, cfg sim.Config, profiles []workload.Profile,
		techs []scaling.Technology, opts sim.StudyOptions) (*sim.StudyResult, error) {
		return stubResult(cfg, techs), nil
	}
	cases := []struct {
		method, target, body string
		want                 int
	}{
		{http.MethodGet, "/v1/study?apps=nonesuch", "", http.StatusBadRequest},
		{http.MethodGet, "/v1/study?techs=45nm", "", http.StatusBadRequest},
		{http.MethodGet, "/v1/study?instructions=-5", "", http.StatusBadRequest},
		{http.MethodGet, "/v1/study?instructions=999999999", "", http.StatusBadRequest},
		{http.MethodGet, "/v1/study?instructions=junk", "", http.StatusBadRequest},
		{http.MethodDelete, "/v1/study", "", http.StatusBadRequest},
		{http.MethodPost, "/v1/study", `{"unknown_field":1}`, http.StatusBadRequest},
		{http.MethodPost, "/v1/mttf", `{"apps":["ammp"]`, http.StatusBadRequest},
		{http.MethodPost, "/v1/profiles", "", http.StatusMethodNotAllowed},
	}
	for _, tc := range cases {
		var req *http.Request
		if tc.body != "" {
			req = httptest.NewRequest(tc.method, tc.target, strings.NewReader(tc.body))
		} else {
			req = httptest.NewRequest(tc.method, tc.target, nil)
		}
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, req)
		if rec.Code != tc.want {
			t.Errorf("%s %s: status %d, want %d", tc.method, tc.target, rec.Code, tc.want)
		}
	}
}

// TestProfilesEndpoint lists the registry contents.
func TestProfilesEndpoint(t *testing.T) {
	s := newTestServer(t, nil)
	rec, body := get(t, s, "/v1/profiles")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var profiles []struct {
		Name  string `json:"name"`
		Suite string `json:"suite"`
	}
	if err := json.Unmarshal(body["profiles"], &profiles); err != nil {
		t.Fatal(err)
	}
	want := workload.Names()
	if len(profiles) != len(want) {
		t.Fatalf("%d profiles listed, want %d", len(profiles), len(want))
	}
	for i := range want {
		if profiles[i].Name != want[i] {
			t.Errorf("profile[%d] = %q, want %q", i, profiles[i].Name, want[i])
		}
	}
}

// TestHealthzDrain checks the liveness/readiness split: /readyz flips to
// 503 on drain while /healthz keeps reporting the process alive.
func TestHealthzDrain(t *testing.T) {
	s := newTestServer(t, nil)
	for _, path := range []string{"/healthz", "/readyz"} {
		if rec, _ := get(t, s, path); rec.Code != http.StatusOK {
			t.Fatalf("healthy %s status = %d, want 200", path, rec.Code)
		}
	}
	s.BeginDrain()
	s.BeginDrain() // idempotent
	rec, body := get(t, s, "/readyz")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining /readyz status = %d, want 503", rec.Code)
	}
	var st string
	_ = json.Unmarshal(body["status"], &st)
	if st != "draining" {
		t.Errorf("draining body status = %q", st)
	}
	if rec, _ := get(t, s, "/healthz"); rec.Code != http.StatusOK {
		t.Errorf("draining /healthz status = %d, want 200 (liveness is not readiness)", rec.Code)
	}
}

// TestMetricsEndpoint proves /metrics exposes the acceptance-required
// series: cache hit ratio and scheduler queue depth, plus the request and
// coalescing counters.
func TestMetricsEndpoint(t *testing.T) {
	s := newTestServer(t, nil)
	s.runStudy = func(ctx context.Context, cfg sim.Config, profiles []workload.Profile,
		techs []scaling.Technology, opts sim.StudyOptions) (*sim.StudyResult, error) {
		return stubResult(cfg, techs), nil
	}
	get(t, s, "/v1/study?apps=ammp") // miss
	get(t, s, "/v1/study?apps=ammp") // hit

	rec, _ := get(t, s, "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics status = %d", rec.Code)
	}
	var m struct {
		Requests map[string]int64 `json:"requests_total"`
		Status   map[string]int64 `json:"status_total"`
		Latency  map[string]int64 `json:"latency_ms"`
		Cache    struct {
			Hits     int64   `json:"hits"`
			Misses   int64   `json:"misses"`
			HitRatio float64 `json:"hit_ratio"`
		} `json:"cache"`
		Sched struct {
			QueueDepth *int64 `json:"queue_depth"`
			InFlight   *int64 `json:"in_flight"`
		} `json:"sched"`
		Coalesced *int64 `json:"coalesced_total"`
		Shed      *int64 `json:"shed_total"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	if m.Requests["/v1/study"] != 2 {
		t.Errorf("requests_total[/v1/study] = %d, want 2", m.Requests["/v1/study"])
	}
	if m.Cache.Hits != 1 || m.Cache.Misses != 1 {
		t.Errorf("cache hits/misses = %d/%d, want 1/1", m.Cache.Hits, m.Cache.Misses)
	}
	if m.Cache.HitRatio != 0.5 {
		t.Errorf("cache hit_ratio = %v, want 0.5", m.Cache.HitRatio)
	}
	if m.Sched.QueueDepth == nil || m.Sched.InFlight == nil {
		t.Error("sched queue_depth/in_flight gauges missing from /metrics")
	}
	if m.Coalesced == nil || m.Shed == nil {
		t.Error("coalesced_total/shed_total missing from /metrics")
	}
	var total int64
	for _, n := range m.Latency {
		total += n
	}
	if total < 2 {
		t.Errorf("latency histogram holds %d observations, want >=2", total)
	}
	for _, name := range sortedBucketNames() {
		if strings.HasPrefix(name, "le_") && !strings.Contains(name, "ms") {
			t.Errorf("malformed bucket label %q", name)
		}
	}
}

// TestServerServesRealStudy runs the genuine pipeline end to end through
// the HTTP layer: the served document must match a direct library run
// byte-for-byte, /v1/mttf must be warmed by /v1/study's cache entry, and
// the scheduler counters must reflect the completed tasks.
func TestServerServesRealStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulation in -short mode")
	}
	s := newTestServer(t, func(c *Config) {
		c.Sim.Instructions = 20_000
		c.DefaultInstructions = 20_000
	})

	const target = "/v1/study?apps=bzip2&techs=65nm%20(1.0V)"
	rec, body := get(t, s, target)
	if rec.Code != http.StatusOK {
		t.Fatalf("study status = %d: %s", rec.Code, rec.Body.String())
	}
	if m := meta(t, body); m.Cache != "miss" {
		t.Fatalf("first request cache = %q, want miss", m.Cache)
	}

	// Reference: the same study via the library, rendered the same way.
	cfg := s.cfg.Sim
	cfg.Instructions = 20_000
	prof, err := workload.ByName("bzip2")
	if err != nil {
		t.Fatal(err)
	}
	tech, err := scaling.ByName("65nm (1.0V)")
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.RunStudy(cfg, []workload.Profile{prof},
		[]scaling.Technology{scaling.Base(), tech})
	if err != nil {
		t.Fatal(err)
	}
	var served, direct any
	if err := json.Unmarshal(body["study"], &served); err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(report.BuildDocument(res))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &direct); err != nil {
		t.Fatal(err)
	}
	servedJSON, _ := json.Marshal(served)
	wantJSON, _ := json.Marshal(direct)
	if string(servedJSON) != string(wantJSON) {
		t.Error("served study document differs from the direct library run")
	}

	// /v1/mttf shares the cache: same key, zero extra compute.
	rec, body = get(t, s, "/v1/mttf?apps=bzip2&techs=65nm%20(1.0V)")
	if rec.Code != http.StatusOK {
		t.Fatalf("mttf status = %d", rec.Code)
	}
	if m := meta(t, body); m.Cache != "hit" {
		t.Errorf("mttf after study cache = %q, want hit", m.Cache)
	}
	var mttf struct {
		Technologies []struct {
			Tech string  `json:"tech"`
			Avg  float64 `json:"suite_avg_fit"`
		} `json:"technologies"`
	}
	if err := json.Unmarshal(body["mttf"], &mttf); err != nil {
		t.Fatal(err)
	}
	if len(mttf.Technologies) != 2 || mttf.Technologies[0].Tech != "180nm" {
		t.Errorf("mttf technologies = %+v", mttf.Technologies)
	}
	if mttf.Technologies[1].Avg <= 0 {
		t.Error("scaled technology suite-average FIT is zero")
	}

	// The shared scheduler counters saw the study's tasks.
	if s.schedStats.Completed() == 0 {
		t.Error("sched completed counter is zero after a real study")
	}
	if s.schedStats.QueueDepth() != 0 || s.schedStats.InFlight() != 0 {
		t.Error("sched gauges nonzero at rest")
	}
}
