package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestFlightGroupDedup runs 100 concurrent identical requests and proves
// exactly one execution happens, with 99 coalesced followers. Run under
// -race this also exercises the result-sharing paths.
func TestFlightGroupDedup(t *testing.T) {
	g := newFlightGroup()
	var calls, coalesced atomic.Int64
	release := make(chan struct{})
	var wg sync.WaitGroup
	const n = 100
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err, joined := g.Do(context.Background(), context.Background(), "key",
				func(context.Context) (any, error) {
					calls.Add(1)
					<-release
					return "result", nil
				})
			if err != nil {
				t.Error(err)
			}
			if v != "result" {
				t.Errorf("got %v, want result", v)
			}
			if joined {
				coalesced.Add(1)
			}
		}()
	}
	// Let followers pile onto the open flight before releasing the leader.
	deadline := time.After(5 * time.Second)
	for calls.Load() == 0 {
		select {
		case <-deadline:
			t.Fatal("leader never started")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()
	if got := calls.Load(); got != 1 {
		t.Errorf("fn ran %d times, want 1", got)
	}
	if got := coalesced.Load(); got != n-1 {
		t.Errorf("coalesced = %d, want %d", got, n-1)
	}
}

// TestFlightGroupSequentialReruns proves closed flights do not leak: a
// request after completion starts a fresh execution.
func TestFlightGroupSequentialReruns(t *testing.T) {
	g := newFlightGroup()
	var calls atomic.Int64
	for i := 0; i < 3; i++ {
		_, err, joined := g.Do(context.Background(), context.Background(), "key",
			func(context.Context) (any, error) {
				calls.Add(1)
				return nil, nil
			})
		if err != nil || joined {
			t.Fatalf("iteration %d: err=%v joined=%v", i, err, joined)
		}
	}
	if calls.Load() != 3 {
		t.Errorf("fn ran %d times, want 3", calls.Load())
	}
}

// TestFlightGroupAbandonCancelsFlight proves that when every waiter gives
// up, the flight context is cancelled and the key is released for fresh
// computation.
func TestFlightGroupAbandonCancelsFlight(t *testing.T) {
	g := newFlightGroup()
	flightCancelled := make(chan struct{})
	started := make(chan struct{})
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err, _ := g.Do(ctx, context.Background(), "key",
			func(fctx context.Context) (any, error) {
				close(started)
				<-fctx.Done()
				close(flightCancelled)
				return nil, fctx.Err()
			})
		errc <- err
	}()
	<-started
	cancel() // the only waiter gives up
	select {
	case <-flightCancelled:
	case <-time.After(5 * time.Second):
		t.Fatal("abandoned flight was not cancelled")
	}
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Errorf("waiter error = %v, want context.Canceled", err)
	}
	// The key must be free for a fresh run that succeeds.
	v, err, joined := g.Do(context.Background(), context.Background(), "key",
		func(context.Context) (any, error) { return "fresh", nil })
	if err != nil || joined || v != "fresh" {
		t.Errorf("fresh run after abandonment: v=%v err=%v joined=%v", v, err, joined)
	}
}

// TestFlightGroupWaiterSurvivesOtherWaiterTimeout proves one caller's
// deadline does not cancel a flight another caller still wants.
func TestFlightGroupWaiterSurvivesOtherWaiterTimeout(t *testing.T) {
	g := newFlightGroup()
	release := make(chan struct{})
	started := make(chan struct{})
	patientErr := make(chan error, 1)
	patientVal := make(chan any, 1)
	go func() {
		v, err, _ := g.Do(context.Background(), context.Background(), "key",
			func(fctx context.Context) (any, error) {
				close(started)
				select {
				case <-release:
					return "done", nil
				case <-fctx.Done():
					return nil, fctx.Err()
				}
			})
		patientErr <- err
		patientVal <- v
	}()
	<-started
	// An impatient follower joins, then times out.
	impatient, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, err, joined := g.Do(impatient, context.Background(), "key",
		func(context.Context) (any, error) { t.Error("follower must not run fn"); return nil, nil })
	if !joined || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("impatient follower: joined=%v err=%v", joined, err)
	}
	close(release)
	if err := <-patientErr; err != nil {
		t.Errorf("patient waiter failed: %v", err)
	}
	if v := <-patientVal; v != "done" {
		t.Errorf("patient waiter got %v, want done", v)
	}
}
