package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/ramp-sim/ramp/internal/core"
	"github.com/ramp-sim/ramp/internal/scaling"
	"github.com/ramp-sim/ramp/internal/sim"
	"github.com/ramp-sim/ramp/internal/workload"
)

// mcStubRunStudy returns a runStudy stub that fabricates a finished grid
// with positive FIT breakdowns under unit constants — everything the MC
// sampler reads — deterministically from the request inputs, so two
// servers given the same request produce identical study results.
func mcStubRunStudy(calls *atomic.Int64) func(ctx context.Context, cfg sim.Config,
	profiles []workload.Profile, techs []scaling.Technology, opts sim.StudyOptions) (*sim.StudyResult, error) {
	return func(ctx context.Context, cfg sim.Config, profiles []workload.Profile,
		techs []scaling.Technology, opts sim.StudyOptions) (*sim.StudyResult, error) {
		if calls != nil {
			calls.Add(1)
		}
		res := &sim.StudyResult{Config: cfg, Techs: techs,
			Constants: core.UnitConstants(), Worst: make([]sim.WorstCase, len(techs))}
		for ti, tech := range techs {
			for i, p := range profiles {
				var b core.Breakdown
				b.ByStructMech[0][core.EM] = 500 + 100*float64(i) + 50*float64(ti)
				b.ByStructMech[1][core.TDDB] = 300 + 10*float64(i)
				res.Apps = append(res.Apps, sim.AppRun{
					App: p.Name, Suite: p.Suite, Tech: tech, RawFIT: b})
			}
		}
		return res, nil
	}
}

// mcStreamEvent is the decoded superset of every /v1/study/mc event type.
type mcStreamEvent struct {
	SchemaVersion int             `json:"schema_version"`
	Event         string          `json:"event"`
	Key           string          `json:"key"`
	StudyKey      string          `json:"study_key"`
	CellsTotal    int             `json:"cells_total"`
	Samples       int             `json:"samples"`
	Model         string          `json:"model"`
	Cache         string          `json:"cache"`
	Done          int             `json:"done"`
	Total         int             `json:"total"`
	CellIndex     int             `json:"cell_index"`
	Cell          json.RawMessage `json:"cell"`
	Meta          *StudyMeta      `json:"meta"`
	MC            json.RawMessage `json:"mc"`
	Error         *ErrorBody      `json:"error"`
}

// runMC drives the handler to stream completion against a recorder (it
// implements http.Flusher) and returns the decoded events plus raw lines.
func runMC(t *testing.T, s *Server, req *http.Request) (*httptest.ResponseRecorder, []mcStreamEvent, [][]byte) {
	t.Helper()
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	var events []mcStreamEvent
	var lines [][]byte
	// Error envelopes (400/429/503) are indented JSON, not NDJSON — leave
	// them to the caller.
	if !strings.HasPrefix(rec.Header().Get("Content-Type"), "application/x-ndjson") {
		return rec, nil, nil
	}
	sc := bufio.NewScanner(bytes.NewReader(rec.Body.Bytes()))
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		line := append([]byte(nil), sc.Bytes()...)
		lines = append(lines, line)
		var ev mcStreamEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatalf("bad stream line %q: %v", line, err)
		}
		events = append(events, ev)
	}
	return rec, events, lines
}

// finalMC extracts the terminal "mc" event, failing if it is missing.
func finalMC(t *testing.T, events []mcStreamEvent) mcStreamEvent {
	t.Helper()
	for _, ev := range events {
		if ev.Event == "mc" {
			return ev
		}
	}
	t.Fatalf("no terminal mc event in %d events", len(events))
	return mcStreamEvent{}
}

// TestMCStreamDeterministicAcrossParallelism is the endpoint's core
// regression: the same request against a parallelism-1 and a parallelism-8
// server must produce byte-identical Monte Carlo summaries — percentiles,
// CIs, everything in the terminal payload.
func TestMCStreamDeterministicAcrossParallelism(t *testing.T) {
	const target = "/v1/study/mc?apps=ammp,gcc&techs=130nm&samples=4000&seed=7&batch=64&percentiles=10,50,90"
	var payloads []json.RawMessage
	var keys []string
	for _, par := range []int{1, 8} {
		s := newTestServer(t, func(c *Config) { c.Parallelism = par })
		s.runStudy = mcStubRunStudy(nil)
		rec, events, _ := runMC(t, s, httptest.NewRequest(http.MethodGet, target, nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("parallelism %d: status = %d: %s", par, rec.Code, rec.Body.String())
		}
		if events[0].Event != "meta" || events[0].Cache != "miss" ||
			events[0].CellsTotal != 4 || events[0].Samples != 4000 ||
			events[0].Key == "" || events[0].StudyKey == "" {
			t.Fatalf("parallelism %d: bad meta event: %+v", par, events[0])
		}
		var cells, progress int
		for _, ev := range events {
			switch ev.Event {
			case "mc_cell":
				cells++
			case "mc_progress":
				progress++
			}
		}
		if cells != 4 {
			t.Fatalf("parallelism %d: %d mc_cell events, want 4", par, cells)
		}
		if progress == 0 {
			t.Fatalf("parallelism %d: no mc_progress events at batch=64", par)
		}
		fin := finalMC(t, events)
		payloads = append(payloads, fin.MC)
		keys = append(keys, fin.Meta.Key)
	}
	if !bytes.Equal(payloads[0], payloads[1]) {
		t.Errorf("MC payload differs between parallelism 1 and 8:\n%s\nvs\n%s",
			payloads[0], payloads[1])
	}
	if keys[0] == "" || keys[0] != keys[1] {
		t.Errorf("MC keys disagree: %q vs %q", keys[0], keys[1])
	}
}

// TestMCStreamPost: the POST body form carries the same knobs, rejects
// unknown fields, and honours the requested percentile set.
func TestMCStreamPost(t *testing.T) {
	s := newTestServer(t, nil)
	s.runStudy = mcStubRunStudy(nil)
	body := `{"apps":["ammp"],"techs":["130nm"],"samples":800,"seed":3,"percentiles":[10,90]}`
	rec, events, _ := runMC(t, s,
		httptest.NewRequest(http.MethodPost, "/v1/study/mc", strings.NewReader(body)))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	fin := finalMC(t, events)
	var res sim.MCResult
	if err := json.Unmarshal(fin.MC, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 2 || res.TotalReplicas != 1600 {
		t.Fatalf("cells = %d, replicas = %d", len(res.Cells), res.TotalReplicas)
	}
	for _, c := range res.Cells {
		if len(c.Percentiles) != 2 || c.Percentiles[0].P != 10 || c.Percentiles[1].P != 90 {
			t.Fatalf("bad percentile set: %+v", c.Percentiles)
		}
		if c.Samples != 800 || !(c.MeanYears > 0) {
			t.Fatalf("bad cell summary: %+v", c)
		}
	}

	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/study/mc",
		strings.NewReader(`{"apps":["ammp"],"bogus":1}`)))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("unknown field status = %d", rec.Code)
	}
}

// TestMCStreamSharesStudyFlight: two concurrent MC requests that differ
// only in seed need the same deterministic study; exactly one simulation
// must run, with the second request coalescing onto the first's flight.
func TestMCStreamSharesStudyFlight(t *testing.T) {
	s := newTestServer(t, nil)
	var calls atomic.Int64
	release := make(chan struct{})
	stub := mcStubRunStudy(&calls)
	s.runStudy = func(ctx context.Context, cfg sim.Config, profiles []workload.Profile,
		techs []scaling.Technology, opts sim.StudyOptions) (*sim.StudyResult, error) {
		select {
		case <-release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return stub(ctx, cfg, profiles, techs, opts)
	}

	var wg sync.WaitGroup
	finals := make([]mcStreamEvent, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			target := "/v1/study/mc?apps=ammp&techs=130nm&samples=500&seed=" + []string{"1", "2"}[i]
			rec, events, _ := runMC(t, s, httptest.NewRequest(http.MethodGet, target, nil))
			if rec.Code != http.StatusOK {
				t.Errorf("request %d: status = %d: %s", i, rec.Code, rec.Body.String())
				return
			}
			finals[i] = finalMC(t, events)
		}()
	}
	// Both streams must be waiting on the one blocked flight before it is
	// released: the coalesce counter ticks when the second one joins.
	deadline := time.Now().Add(5 * time.Second)
	for s.metrics.Coalesced.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("second MC request never joined the study flight")
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Errorf("simulations run = %d, want 1", got)
	}
	if finals[0].Meta.Key == finals[1].Meta.Key {
		t.Errorf("different seeds produced the same MC key %q", finals[0].Meta.Key)
	}
	if bytes.Equal(finals[0].MC, finals[1].MC) {
		t.Errorf("different seeds produced byte-identical MC payloads")
	}
}

// TestMCStreamCacheReplay: an identical repeat is served from the result
// cache — no admission, no recomputation, same terminal payload.
func TestMCStreamCacheReplay(t *testing.T) {
	s := newTestServer(t, nil)
	var calls atomic.Int64
	s.runStudy = mcStubRunStudy(&calls)
	const target = "/v1/study/mc?apps=ammp&techs=130nm&samples=500&seed=11"

	_, events, _ := runMC(t, s, httptest.NewRequest(http.MethodGet, target, nil))
	cold := finalMC(t, events)
	if cold.Meta.Cache != "miss" {
		t.Fatalf("first run cache = %q", cold.Meta.Cache)
	}

	_, events2, _ := runMC(t, s, httptest.NewRequest(http.MethodGet, target, nil))
	if events2[0].Event != "meta" || events2[0].Cache != "hit" {
		t.Fatalf("replay meta = %+v", events2[0])
	}
	var cells int
	for _, ev := range events2 {
		if ev.Event == "mc_cell" {
			cells++
		}
		if ev.Event == "mc_progress" {
			t.Errorf("replay emitted a progress event")
		}
	}
	if cells != 2 {
		t.Errorf("replay streamed %d cells, want 2", cells)
	}
	warm := finalMC(t, events2)
	if warm.Meta.Cache != "hit" || !bytes.Equal(cold.MC, warm.MC) {
		t.Errorf("replay payload differs from the computed one")
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("simulations run = %d, want 1", got)
	}
	if got := s.metrics.MCStudies.Value(); got != 2 {
		t.Errorf("mc_studies_total = %d, want 2", got)
	}
	// Replicas are counted once: replays draw nothing.
	if got := s.metrics.MCReplicas.Value(); got != 1000 {
		t.Errorf("mc_replicas_total = %d, want 1000", got)
	}
}

// TestMCStreamCancelFreesAdmission disconnects the client mid-stream and
// requires the computation to be cancelled and the admission slot (the
// only one) returned. Run under -race this also exercises the sampler's
// shutdown paths against the writer loop.
func TestMCStreamCancelFreesAdmission(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.MaxQueue = 1 })
	sawCancel := make(chan error, 1)
	s.runStudy = func(ctx context.Context, cfg sim.Config, profiles []workload.Profile,
		techs []scaling.Technology, opts sim.StudyOptions) (*sim.StudyResult, error) {
		<-ctx.Done() // only a client disconnect can release the stub
		sawCancel <- ctx.Err()
		return nil, ctx.Err()
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		ts.URL+"/v1/study/mc?apps=ammp&techs=130nm&samples=1000", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() { // meta event: the stream is live
		t.Fatal("no meta event")
	}
	cancel() // drop the connection mid-stream

	select {
	case err := <-sawCancel:
		if err == nil {
			t.Fatal("computation context not cancelled")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("client disconnect never cancelled the computation")
	}

	// The admission slot must come back for the next request.
	s.runStudy = mcStubRunStudy(nil)
	deadline := time.Now().Add(5 * time.Second)
	for {
		rec, events, _ := runMC(t, s, httptest.NewRequest(http.MethodGet,
			"/v1/study/mc?apps=gcc&techs=130nm&samples=200", nil))
		if rec.Code == http.StatusOK && len(events) > 0 && events[len(events)-1].Event == "mc" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("admission slot never freed: last status %d", rec.Code)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestMCBadRequests: every invalid knob maps to a 400 with the standard
// envelope before any NDJSON is written.
func TestMCBadRequests(t *testing.T) {
	s := newTestServer(t, func(c *Config) {
		c.MaxMCSamples = 1000
		c.MaxMCReplicas = 1500
	})
	s.runStudy = mcStubRunStudy(nil)
	bad := []string{
		"/v1/study/mc?apps=ammp&samples=-5",
		"/v1/study/mc?apps=ammp&model=gamma",
		"/v1/study/mc?apps=ammp&percentiles=abc",
		"/v1/study/mc?apps=ammp&percentiles=0",
		"/v1/study/mc?apps=ammp&ci=1.5",
		"/v1/study/mc?apps=ammp&samples=notanumber",
		"/v1/study/mc?apps=nonexistent",
		"/v1/study/mc?apps=ammp&techs=130nm&samples=2000",    // over MaxMCSamples
		"/v1/study/mc?apps=ammp,gcc&techs=130nm&samples=900", // 3600 replicas > MaxMCReplicas
	}
	for _, target := range bad {
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, target, nil))
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", target, rec.Code)
			continue
		}
		var envelope ErrorResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &envelope); err != nil {
			t.Errorf("%s: bad envelope: %v", target, err)
			continue
		}
		if envelope.Error.Code != CodeBadRequest || envelope.Error.Message == "" {
			t.Errorf("%s: bad envelope: %+v", target, envelope)
		}
	}

	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodDelete, "/v1/study/mc", nil))
	if rec.Code != http.StatusBadRequest {
		t.Errorf("DELETE status = %d, want 400", rec.Code)
	}
}

// TestMCOverloaded: with the only admission slot occupied, an MC request
// is shed with 429 + Retry-After.
func TestMCOverloaded(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.MaxQueue = 1 })
	block := make(chan struct{})
	s.runStudy = func(ctx context.Context, cfg sim.Config, profiles []workload.Profile,
		techs []scaling.Technology, opts sim.StudyOptions) (*sim.StudyResult, error) {
		select {
		case <-block:
		case <-ctx.Done():
		}
		return stubResult(cfg, techs), nil
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, sc := openStream(t, ts, "/v1/study/stream?apps=ammp&techs=130nm")
	defer resp.Body.Close()
	defer close(block)
	if !sc.Scan() {
		t.Fatal("no meta event from the occupying stream")
	}

	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec,
		httptest.NewRequest(http.MethodGet, "/v1/study/mc?apps=gcc&techs=130nm&samples=100", nil))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("overloaded MC status = %d", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Errorf("429 without Retry-After")
	}
	var envelope ErrorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &envelope); err != nil {
		t.Fatal(err)
	}
	if envelope.Error.Code != CodeOverloaded {
		t.Errorf("bad overload envelope: %+v", envelope)
	}
}
