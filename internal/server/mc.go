package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"github.com/ramp-sim/ramp/internal/obs"
	"github.com/ramp-sim/ramp/internal/scaling"
	"github.com/ramp-sim/ramp/internal/sim"
	"github.com/ramp-sim/ramp/internal/workload"
)

// NDJSON streaming protocol of /v1/study/mc. One JSON object per line,
// discriminated by "event":
//
//	meta        — exactly once, first: schema version, the MC study key,
//	              the underlying deterministic study key, grid size,
//	              replica count, lifetime model, and whether the stream
//	              replays a cached result.
//	mc_progress — zero or more per cell while it samples: a running
//	              estimate whose Samples field is below the requested
//	              count. Estimates tighten as replica batches land.
//	mc_cell     — one per finished (application × technology) cell, in
//	              completion order, carrying its final summary.
//	heartbeat   — emitted on an idle connection every
//	              Config.StreamHeartbeat.
//	mc          — exactly once on success, last: the complete
//	              sim.MCResult plus response meta.
//	error       — exactly once on failure, last: the standard error body.
//
// Closing the connection cancels the sampling. The deterministic study
// feeding the sampler coalesces with identical /v1/study traffic and its
// stages stay in the stage cache, so two MC requests differing only in
// seed or sample count share one simulation.

// MCStudyRequest is the wire form of a Monte Carlo study query: the
// study selection plus the sampling knobs of sim.MCConfig, flattened
// into one JSON object.
type MCStudyRequest struct {
	StudyRequest
	sim.MCConfig
}

// mcMetaEvent opens every MC stream.
type mcMetaEvent struct {
	SchemaVersion int    `json:"schema_version"`
	Event         string `json:"event"` // "meta"
	RequestID     string `json:"request_id,omitempty"`
	Key           string `json:"key"`       // MC study key (seed-dependent)
	StudyKey      string `json:"study_key"` // underlying deterministic study key
	CellsTotal    int    `json:"cells_total"`
	Samples       int    `json:"samples"`
	Model         string `json:"model"`
	Cache         string `json:"cache"` // "hit" or "miss"
}

// mcProgressEvent carries a running estimate for one still-sampling cell.
type mcProgressEvent struct {
	Event     string     `json:"event"` // "mc_progress"
	CellIndex int        `json:"cell_index"`
	Cell      sim.MCCell `json:"cell"`
}

// mcCellEvent carries one finished cell's summary.
type mcCellEvent struct {
	Event     string     `json:"event"` // "mc_cell"
	Done      int        `json:"done"`
	Total     int        `json:"total"`
	CellIndex int        `json:"cell_index"`
	Cell      sim.MCCell `json:"cell"`
}

// mcResultEvent terminates a successful MC stream.
type mcResultEvent struct {
	Event string       `json:"event"` // "mc"
	Meta  StudyMeta    `json:"meta"`
	MC    sim.MCResult `json:"mc"`
}

// mcEventBuffer is the slack beyond one slot per grid cell in the event
// channel, absorbing progress batches while the writer flushes.
const mcEventBuffer = 1024

// parseMCStudyRequest accepts POST application/json bodies and GET query
// parameters (?apps=a,b&techs=x&samples=n&model=m&percentiles=5,50,95&
// ci=0.95&seed=n&batch=n&instructions=n&fidelity=m&mechanisms=em,nbti).
func parseMCStudyRequest(r *http.Request) (MCStudyRequest, error) {
	var req MCStudyRequest
	switch r.Method {
	case http.MethodPost:
		dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 1<<20))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			return req, fmt.Errorf("bad request body: %w", err)
		}
	case http.MethodGet:
		q := r.URL.Query()
		req.Apps = splitList(q.Get("apps"))
		req.Techs = splitList(q.Get("techs"))
		req.Fidelity = strings.TrimSpace(q.Get("fidelity"))
		req.Mechanisms = splitList(q.Get("mechanisms"))
		if v := q.Get("instructions"); v != "" {
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return req, fmt.Errorf("bad instructions %q", v)
			}
			req.Instructions = n
		}
		if v := q.Get("samples"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil {
				return req, fmt.Errorf("bad samples %q", v)
			}
			req.Samples = n
		}
		req.Model = q.Get("model")
		for _, p := range splitList(q.Get("percentiles")) {
			f, err := strconv.ParseFloat(p, 64)
			if err != nil {
				return req, fmt.Errorf("bad percentile %q", p)
			}
			req.Percentiles = append(req.Percentiles, f)
		}
		if v := q.Get("ci"); v != "" {
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return req, fmt.Errorf("bad ci %q", v)
			}
			req.CILevel = f
		}
		if v := q.Get("seed"); v != "" {
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return req, fmt.Errorf("bad seed %q", v)
			}
			req.Seed = n
		}
		if v := q.Get("batch"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil {
				return req, fmt.Errorf("bad batch %q", v)
			}
			req.BatchSize = n
		}
	default:
		return req, errors.New("use GET or POST")
	}
	return req, nil
}

// resolveMC turns a wire MC request into concrete inputs: the study
// resolution of resolve plus a normalized, validated MCConfig held under
// the server's replica caps.
func (s *Server) resolveMC(req MCStudyRequest) (sim.Config, []workload.Profile,
	[]scaling.Technology, sim.MCConfig, error) {
	cfg, profiles, techs, err := s.resolve(req.StudyRequest)
	if err != nil {
		return cfg, nil, nil, sim.MCConfig{}, err
	}
	mcfg := req.MCConfig.Normalized()
	if err := mcfg.Validate(); err != nil {
		return cfg, nil, nil, mcfg, err
	}
	if mcfg.Samples > s.cfg.MaxMCSamples {
		return cfg, nil, nil, mcfg, fmt.Errorf("samples %d exceeds the server cap %d",
			mcfg.Samples, s.cfg.MaxMCSamples)
	}
	if cells := len(profiles) * len(techs); mcfg.Samples*cells > s.cfg.MaxMCReplicas {
		return cfg, nil, nil, mcfg, fmt.Errorf(
			"total replicas %d (%d samples × %d grid cells) exceeds the server cap %d; "+
				"reduce samples or narrow apps/techs",
			mcfg.Samples*cells, mcfg.Samples, cells, s.cfg.MaxMCReplicas)
	}
	return cfg, profiles, techs, mcfg, nil
}

// handleStudyMC serves a Monte Carlo lifetime study incrementally as
// NDJSON. The admission slot is held for the stream's whole duration, so
// the deterministic study underneath runs through the shared flight group
// without re-admitting (admit=false) — blocking, streaming, and MC
// clients all coalesce against each other's simulations.
func (s *Server) handleStudyMC(w http.ResponseWriter, r *http.Request) {
	req, err := parseMCStudyRequest(r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, CodeBadRequest, err)
		return
	}
	cfg, profiles, techs, mcfg, err := s.resolveMC(req)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, CodeBadRequest, err)
		return
	}
	studyKey, err := sim.StudyKey(cfg, profiles, techs)
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, CodeInternal, err)
		return
	}
	mcKey, err := sim.MCStudyKey(cfg, mcfg, profiles, techs)
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, CodeInternal, err)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		s.writeError(w, http.StatusInternalServerError, CodeInternal,
			errors.New("streaming unsupported by connection"))
		return
	}
	cellsTotal := len(profiles) * len(techs)
	reqID := obs.RequestIDFrom(r.Context())
	served := s.now()

	// Whole-result cache hit: replay the cell summaries instantly, no
	// admission slot.
	if v, ok := s.cache.Get(mcKey); ok {
		s.metrics.MCStudies.Add(1)
		s.obs.mcStudies.Inc()
		res := v.(*sim.MCResult)
		if s.ledger != nil {
			rec := s.newRunRecord(r.Context(), "mc", mcKey, cfg, len(profiles),
				served, obs.ResultHit, nil)
			rec.Replicas = res.TotalReplicas
			s.appendRun(rec)
		}
		sw := s.newStreamWriter(w, flusher)
		sw.send(mcMetaEvent{SchemaVersion: SchemaVersion, Event: "meta", RequestID: reqID,
			Key: mcKey, StudyKey: studyKey, CellsTotal: cellsTotal,
			Samples: mcfg.Samples, Model: mcfg.Model, Cache: "hit"})
		for i, c := range res.Cells {
			sw.send(mcCellEvent{"mc_cell", i + 1, len(res.Cells), i, c})
		}
		sw.send(mcResultEvent{"mc", StudyMeta{Key: mcKey, Cache: "hit"}, *res})
		return
	}

	// Admit or shed. The slot spans the stream: study plus sampling.
	select {
	case s.admission <- struct{}{}:
		defer func() { <-s.admission }()
	default:
		s.writeRetryAfter(w)
		s.writeError(w, http.StatusTooManyRequests, CodeOverloaded,
			errors.New("server overloaded, retry later"))
		return
	}
	s.metrics.MCStudies.Add(1)
	s.obs.mcStudies.Inc()
	s.logger.Info("mc start", "request_id", reqID, "key", mcKey,
		"study_key", studyKey, "samples", mcfg.Samples, "model", mcfg.Model)

	// The computation lives under the request context (client disconnect
	// cancels it) and dies with the server's base context on Close.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	stop := context.AfterFunc(s.baseCtx, cancel)
	defer stop()
	if s.cfg.ComputeTimeout > 0 {
		var tcancel context.CancelFunc
		ctx, tcancel = context.WithTimeout(ctx, s.cfg.ComputeTimeout)
		defer tcancel()
	}
	collector := obs.NewCollector(s.cfg.TraceSpanLimit)
	// The sampler's spans (MC batches, cache traffic) feed the handler's
	// RunStats; the deterministic study underneath reports its own stats
	// from the flight, merged below.
	sinks := []obs.SpanSink{s.obs.sink, collector}
	var stats *obs.RunStats
	if s.ledger != nil {
		stats = obs.NewRunStats()
		sinks = append(sinks, stats)
	}
	ctx = obs.WithTracer(ctx, obs.NewTracer(obs.MultiSink(sinks...)))

	sw := s.newStreamWriter(w, flusher)
	sw.send(mcMetaEvent{SchemaVersion: SchemaVersion, Event: "meta", RequestID: reqID,
		Key: mcKey, StudyKey: studyKey, CellsTotal: cellsTotal,
		Samples: mcfg.Samples, Model: mcfg.Model, Cache: "miss"})

	// Workers publish estimates into a buffered channel so a slow reader
	// never stalls the sampling; the writer loop below drains it.
	events := make(chan sim.MCEvent, cellsTotal+mcEventBuffer)
	done := make(chan struct{})
	var res *sim.MCResult
	var flightStats *obs.RunStats
	var runErr error
	start := s.now()
	go func() {
		defer close(done)
		// The deterministic study coalesces with any identical in-flight
		// request; admit=false because this stream already holds a slot.
		base, _, fstats, err := s.studyFlight(ctx, cfg, profiles, techs, studyKey, false, nil)
		flightStats = fstats
		if err != nil {
			runErr = err
			return
		}
		res, runErr = sim.MonteCarloStudy(ctx, base, mcfg, sim.MCOptions{
			Parallelism: s.cfg.Parallelism,
			Metrics:     s.schedRec,
			OnEvent: func(ev sim.MCEvent) {
				select {
				case events <- ev:
				case <-ctx.Done():
				}
			},
		})
	}()

	heartbeat := time.NewTicker(s.cfg.StreamHeartbeat)
	defer heartbeat.Stop()
	for {
		select {
		case ev := <-events:
			sw.send(mcEventWire(ev))
		case <-heartbeat.C:
			sw.send(streamHeartbeatEvent{"heartbeat"})
		case <-done:
			// The sampler has returned; every OnEvent send has either
			// landed in the buffer or been abandoned on cancellation.
			for drained := false; !drained; {
				select {
				case ev := <-events:
					sw.send(mcEventWire(ev))
				default:
					drained = true
				}
			}
			if s.ledger != nil {
				rec := s.newRunRecord(ctx, "mc", mcKey, cfg, len(profiles),
					start, obs.ResultMiss, runErr)
				if flightStats != nil {
					flightStats.Fill(&rec)
				}
				stats.Fill(&rec)
				if res != nil {
					rec.Replicas = res.TotalReplicas
				}
				s.appendRun(rec)
			}
			if runErr != nil {
				s.logger.Warn("mc failed", "request_id", reqID, "key", mcKey,
					"error", runErr.Error())
				_, code, msg := s.studyErrorStatus(runErr)
				sw.send(streamErrorEvent{"error", ErrorBody{Code: code, Message: msg.Error()}})
				return
			}
			s.traces.Add(obs.TraceEntry{
				Key: mcKey, RequestID: reqID, CapturedAt: s.now(), Spans: collector.Spans()})
			s.cache.Put(mcKey, res)
			s.metrics.MCReplicas.Add(int64(res.TotalReplicas))
			s.obs.mcReplicas.Add(uint64(res.TotalReplicas))
			meta := StudyMeta{Key: mcKey, Cache: "miss",
				ComputeMS: float64(s.now().Sub(start)) / float64(time.Millisecond)}
			s.logger.Info("mc done", "request_id", reqID, "key", mcKey,
				"replicas", res.TotalReplicas, "compute_ms", meta.ComputeMS)
			sw.send(mcResultEvent{"mc", meta, *res})
			return
		}
	}
}

// mcEventWire maps a sampler event to its wire form.
func mcEventWire(ev sim.MCEvent) any {
	if ev.Final {
		return mcCellEvent{"mc_cell", ev.CellsDone, ev.CellsTotal, ev.CellIndex, ev.Cell}
	}
	return mcProgressEvent{"mc_progress", ev.CellIndex, ev.Cell}
}
