package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"slices"
	"testing"

	"github.com/ramp-sim/ramp/internal/scaling"
	"github.com/ramp-sim/ramp/internal/sim"
	"github.com/ramp-sim/ramp/internal/workload"
)

// TestMechanismsDiscoveryEndpoint: GET /v1/mechanisms lists every
// registered mechanism with its documentation and flags the paper's four
// as the default — the wire contract clients use to build selection UIs.
func TestMechanismsDiscoveryEndpoint(t *testing.T) {
	s := newTestServer(t, nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/mechanisms", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /v1/mechanisms = %d, want 200: %s", rec.Code, rec.Body.String())
	}
	var resp MechanismsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.SchemaVersion != SchemaVersion {
		t.Errorf("schema_version = %d, want %d", resp.SchemaVersion, SchemaVersion)
	}
	if !slices.Equal(resp.Default, []string{"em", "sm", "tc", "tddb"}) {
		t.Errorf("default = %v, want the paper's four", resp.Default)
	}
	if len(resp.Mechanisms) < 7 {
		t.Fatalf("listed %d mechanisms, want >= 7", len(resp.Mechanisms))
	}
	defaults := 0
	for _, m := range resp.Mechanisms {
		if m.Name == "" || m.Description == "" || m.Params == "" || m.Scope == "" {
			t.Errorf("mechanism %+v missing documentation fields", m)
		}
		if m.Default {
			defaults++
		}
	}
	if defaults != 4 {
		t.Errorf("%d mechanisms flagged default, want 4", defaults)
	}
}

// TestMechanismsEndpointMethodNotAllowed: the discovery endpoint is
// read-only and rejects writes with the standard error envelope.
func TestMechanismsEndpointMethodNotAllowed(t *testing.T) {
	s := newTestServer(t, nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/mechanisms", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /v1/mechanisms = %d, want 405", rec.Code)
	}
	var env struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	if env.Error.Code != CodeMethodNotAllowed {
		t.Errorf("error code = %q, want %q", env.Error.Code, CodeMethodNotAllowed)
	}
}

// TestStudyRequestMechanismSelection: the mechanisms query parameter flows
// canonicalised into the study configuration — and any spelling of the
// default four resolves to the nil wire form, so those requests share the
// pre-registry cache entries.
func TestStudyRequestMechanismSelection(t *testing.T) {
	s := newTestServer(t, nil)
	var captured []string
	s.runStudy = func(ctx context.Context, cfg sim.Config, profiles []workload.Profile,
		techs []scaling.Technology, opts sim.StudyOptions) (*sim.StudyResult, error) {
		captured = cfg.Mechanisms
		return stubResult(cfg, techs), nil
	}
	// Distinct apps per case: a re-spelled default set shares the cache key
	// with its unspelled twin (tested separately below), which would
	// short-circuit the stub here.
	cases := []struct {
		query string
		want  []string
	}{
		{"/v1/study?apps=gzip&techs=180nm", nil},
		{"/v1/study?apps=ammp&techs=180nm&mechanisms=TDDB,tc,SM,em", nil},
		{"/v1/study?apps=crafty&techs=180nm&mechanisms=EM,nbti", []string{"em", "nbti"}},
		{"/v1/study?apps=mesa&techs=180nm&mechanisms=hci,rainflow,em,sm,tc,tddb",
			[]string{"em", "hci", "sm", "tc", "tc-rainflow", "tddb"}},
	}
	for _, c := range cases {
		captured = []string{"sentinel"}
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, c.query, nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("%s = %d: %s", c.query, rec.Code, rec.Body.String())
		}
		if !slices.Equal(captured, c.want) {
			t.Errorf("%s: cfg.Mechanisms = %v, want %v", c.query, captured, c.want)
		}
	}
}

// TestStudyRequestUnknownMechanismRejected: unregistered names fail fast
// with bad_request before any simulation is scheduled.
func TestStudyRequestUnknownMechanismRejected(t *testing.T) {
	s := newTestServer(t, nil)
	s.runStudy = func(ctx context.Context, cfg sim.Config, profiles []workload.Profile,
		techs []scaling.Technology, opts sim.StudyOptions) (*sim.StudyResult, error) {
		t.Error("simulation ran despite an invalid mechanism name")
		return stubResult(cfg, techs), nil
	}
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet,
		"/v1/study?apps=gzip&mechanisms=em,gamma-ray", nil))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400: %s", rec.Code, rec.Body.String())
	}
	var env struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	if env.Error.Code != CodeBadRequest {
		t.Errorf("error code = %q, want %q", env.Error.Code, CodeBadRequest)
	}
}

// TestStudyCacheKeyedByMechanismSet: requests that differ only in the
// mechanism selection must not cross-serve each other's cached results,
// while a re-spelled default set must hit the default entry.
func TestStudyCacheKeyedByMechanismSet(t *testing.T) {
	s := newTestServer(t, nil)
	var calls int
	s.runStudy = func(ctx context.Context, cfg sim.Config, profiles []workload.Profile,
		techs []scaling.Technology, opts sim.StudyOptions) (*sim.StudyResult, error) {
		calls++
		return stubResult(cfg, techs), nil
	}
	hit := func(target string) StudyMeta {
		t.Helper()
		rec, body := get(t, s, target)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s = %d: %s", target, rec.Code, rec.Body.String())
		}
		return meta(t, body)
	}
	hit("/v1/study?apps=gzip&techs=180nm")
	if m := hit("/v1/study?apps=gzip&techs=180nm&mechanisms=em,sm,tc,tddb"); m.Cache != "hit" {
		t.Error("explicit default spelling missed the default-set cache entry")
	}
	if m := hit("/v1/study?apps=gzip&techs=180nm&mechanisms=em,sm,tc,tddb,nbti"); m.Cache == "hit" {
		t.Error("extended set served from the default set's cache entry")
	}
	if calls != 2 {
		t.Errorf("%d simulations ran, want 2 (default once, nbti-extended once)", calls)
	}
}
