package server

import (
	"fmt"
	"testing"
	"time"
)

// fakeClock is a manually advanced time source.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1_000_000, 0)} }

// TestCacheLRUEviction proves the entry bound holds and eviction is
// least-recently-used, counting Get promotions as use.
func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(3, 0, nil)
	for i := 0; i < 3; i++ {
		c.Put(fmt.Sprintf("k%d", i), i)
	}
	// Touch k0 so k1 becomes the eviction candidate.
	if _, ok := c.Get("k0"); !ok {
		t.Fatal("k0 missing before eviction")
	}
	c.Put("k3", 3)
	if c.Len() != 3 {
		t.Fatalf("cache holds %d entries, want 3", c.Len())
	}
	if _, ok := c.Get("k1"); ok {
		t.Error("k1 survived eviction despite being least recently used")
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("%s evicted unexpectedly", k)
		}
	}
	if st := c.Stats(); st.Evicted != 1 {
		t.Errorf("evicted = %d, want 1", st.Evicted)
	}
}

// TestCacheTTLExpiry proves entries expire on the TTL boundary and are
// reported as expired misses.
func TestCacheTTLExpiry(t *testing.T) {
	clk := newFakeClock()
	c := NewCache(8, time.Minute, clk.now)
	c.Put("k", "v")
	clk.advance(59 * time.Second)
	if _, ok := c.Get("k"); !ok {
		t.Fatal("entry expired before its TTL")
	}
	clk.advance(2 * time.Second)
	if _, ok := c.Get("k"); ok {
		t.Fatal("entry survived past its TTL")
	}
	st := c.Stats()
	if st.Expired != 1 {
		t.Errorf("expired = %d, want 1", st.Expired)
	}
	if st.Entries != 0 {
		t.Errorf("entries = %d, want 0", st.Entries)
	}
	// Re-putting restarts the TTL.
	c.Put("k", "v2")
	clk.advance(30 * time.Second)
	if v, ok := c.Get("k"); !ok || v != "v2" {
		t.Error("refreshed entry not served")
	}
}

// TestCacheHitRatioCounters checks hit/miss accounting.
func TestCacheHitRatioCounters(t *testing.T) {
	c := NewCache(4, 0, nil)
	c.Put("a", 1)
	c.Get("a")
	c.Get("a")
	c.Get("b")
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 {
		t.Errorf("hits/misses = %d/%d, want 2/1", st.Hits, st.Misses)
	}
}
