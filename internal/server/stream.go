package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"time"

	"github.com/ramp-sim/ramp/internal/obs"
	"github.com/ramp-sim/ramp/internal/report"
	"github.com/ramp-sim/ramp/internal/sim"
)

// NDJSON streaming protocol of /v1/study/stream. One JSON object per
// line, discriminated by "event":
//
//	meta      — exactly once, first: schema version, study key, cell
//	            count, and whether the stream replays a cached result.
//	app       — one per completed (application × technology) cell, in
//	            completion order. The cell's RawFIT is uncalibrated;
//	            apply the final study document's constants.
//	heartbeat — emitted on an idle connection every Config.StreamHeartbeat
//	            so proxies do not sever long computations.
//	study     — exactly once on success, last: the same document /v1/study
//	            returns (with meta), calibrated.
//	error     — exactly once on failure, last: the standard error body.
//
// Closing the connection cancels the underlying computation; stages that
// already completed stay in the stage cache, so a repeated request resumes
// rather than restarts.

// streamMetaEvent opens every stream. RequestID (additive) echoes the
// X-Request-ID header for log correlation.
type streamMetaEvent struct {
	SchemaVersion int    `json:"schema_version"`
	Event         string `json:"event"` // "meta"
	RequestID     string `json:"request_id,omitempty"`
	Key           string `json:"key"`
	CellsTotal    int    `json:"cells_total"`
	Cache         string `json:"cache"` // "hit" or "miss"
}

// streamAppEvent carries one completed cell.
type streamAppEvent struct {
	Event  string     `json:"event"` // "app"
	Done   int        `json:"done"`
	Total  int        `json:"total"`
	Source string     `json:"source"`
	App    sim.AppRun `json:"app"`
}

// streamHeartbeatEvent keeps idle connections alive.
type streamHeartbeatEvent struct {
	Event string `json:"event"` // "heartbeat"
}

// streamStudyEvent terminates a successful stream.
type streamStudyEvent struct {
	Event string          `json:"event"` // "study"
	Meta  StudyMeta       `json:"meta"`
	Study report.Document `json:"study"`
}

// streamErrorEvent terminates a failed stream.
type streamErrorEvent struct {
	Event string    `json:"event"` // "error"
	Error ErrorBody `json:"error"`
}

// streamSourceResultCache labels replayed cells of a whole-study cache hit.
const streamSourceResultCache = "result-cache"

// handleStudyStream serves a study incrementally as NDJSON. Admission
// control is the same bounded queue the blocking endpoints use — the slot
// is held for the stream's whole duration — and a completed stream warms
// the same result cache, so blocking and streaming clients coalesce
// against each other's work at both the whole-study and the stage level.
func (s *Server) handleStudyStream(w http.ResponseWriter, r *http.Request) {
	req, err := parseStudyRequest(r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, CodeBadRequest, err)
		return
	}
	cfg, profiles, techs, err := s.resolve(req)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, CodeBadRequest, err)
		return
	}
	key, err := sim.StudyKey(cfg, profiles, techs)
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, CodeInternal, err)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		s.writeError(w, http.StatusInternalServerError, CodeInternal,
			errors.New("streaming unsupported by connection"))
		return
	}
	cellsTotal := len(profiles) * len(techs)

	reqID := obs.RequestIDFrom(r.Context())
	served := s.now()

	// Whole-study cache hit: replay the grid instantly, no admission slot.
	if v, ok := s.cache.Get(key); ok {
		s.metrics.Streams.Add(1)
		s.obs.streams.Inc()
		res := v.(*sim.StudyResult)
		if s.ledger != nil {
			s.appendRun(s.newRunRecord(r.Context(), "study.stream", key, cfg,
				len(profiles), served, obs.ResultHit, nil))
		}
		sw := s.newStreamWriter(w, flusher)
		sw.send(streamMetaEvent{SchemaVersion: SchemaVersion, Event: "meta",
			RequestID: reqID, Key: key, CellsTotal: cellsTotal, Cache: "hit"})
		for i, a := range res.Apps {
			sw.send(streamAppEvent{"app", i + 1, len(res.Apps), streamSourceResultCache, a})
		}
		sw.send(streamStudyEvent{"study", StudyMeta{Key: key, Cache: "hit"},
			report.BuildDocument(res)})
		return
	}

	// Admit or shed. The slot spans the whole stream so MaxQueue bounds
	// streaming and blocking computations together.
	select {
	case s.admission <- struct{}{}:
		defer func() { <-s.admission }()
	default:
		s.writeRetryAfter(w)
		s.writeError(w, http.StatusTooManyRequests, CodeOverloaded,
			errors.New("server overloaded, retry later"))
		return
	}
	s.metrics.Streams.Add(1)
	s.obs.streams.Inc()
	s.metrics.Studies.Add(1)
	s.obs.studies.Inc()
	s.logger.Info("stream start", "request_id", reqID, "key", key)

	// The computation lives under the request context (client disconnect
	// cancels it) and dies with the server's base context on Close.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	stop := context.AfterFunc(s.baseCtx, cancel)
	defer stop()
	if s.cfg.ComputeTimeout > 0 {
		var tcancel context.CancelFunc
		ctx, tcancel = context.WithTimeout(ctx, s.cfg.ComputeTimeout)
		defer tcancel()
	}
	collector := obs.NewCollector(s.cfg.TraceSpanLimit)
	// Streaming runs the study directly (no flight), so its spans feed the
	// handler's RunStats straight off this context's tracer.
	sinks := []obs.SpanSink{s.obs.sink, collector}
	var stats *obs.RunStats
	if s.ledger != nil {
		stats = obs.NewRunStats()
		sinks = append(sinks, stats)
	}
	ctx = obs.WithTracer(ctx, obs.NewTracer(obs.MultiSink(sinks...)))

	sw := s.newStreamWriter(w, flusher)
	sw.send(streamMetaEvent{SchemaVersion: SchemaVersion, Event: "meta",
		RequestID: reqID, Key: key, CellsTotal: cellsTotal, Cache: "miss"})

	// Workers publish cells into a grid-sized buffer, so a slow reader
	// never stalls the simulation; the writer loop below drains it.
	events := make(chan sim.AppEvent, cellsTotal)
	done := make(chan struct{})
	var res *sim.StudyResult
	var runErr error
	start := s.now()
	go func() {
		defer close(done)
		res, runErr = s.runStudy(ctx, cfg, profiles, techs, sim.StudyOptions{
			Parallelism: s.cfg.Parallelism,
			Metrics:     s.schedRec,
			Cache:       s.stageCache,
			OnApp: func(ev sim.AppEvent) {
				select {
				case events <- ev:
				case <-ctx.Done():
				}
			},
		})
	}()

	heartbeat := time.NewTicker(s.cfg.StreamHeartbeat)
	defer heartbeat.Stop()
	for {
		select {
		case ev := <-events:
			sw.send(streamAppEvent{"app", ev.CellsDone, ev.CellsTotal, ev.Source, ev.Run})
		case <-heartbeat.C:
			sw.send(streamHeartbeatEvent{"heartbeat"})
		case <-done:
			// The study has returned; every OnApp send has either landed
			// in the buffer or been abandoned on cancellation.
			for drained := false; !drained; {
				select {
				case ev := <-events:
					sw.send(streamAppEvent{"app", ev.CellsDone, ev.CellsTotal, ev.Source, ev.Run})
				default:
					drained = true
				}
			}
			if s.ledger != nil {
				rec := s.newRunRecord(ctx, "study.stream", key, cfg,
					len(profiles), start, obs.ResultMiss, runErr)
				stats.Fill(&rec)
				s.appendRun(rec)
			}
			if runErr != nil {
				s.logger.Warn("stream failed", "request_id", reqID, "key", key,
					"error", runErr.Error())
				_, code, msg := s.studyErrorStatus(runErr)
				sw.send(streamErrorEvent{"error", ErrorBody{Code: code, Message: msg.Error()}})
				return
			}
			s.traces.Add(obs.TraceEntry{
				Key: key, RequestID: reqID, CapturedAt: s.now(), Spans: collector.Spans()})
			s.cache.Put(key, res)
			meta := StudyMeta{Key: key, Cache: "miss",
				ComputeMS: float64(s.now().Sub(start)) / float64(time.Millisecond)}
			s.logger.Info("stream done", "request_id", reqID, "key", key,
				"compute_ms", meta.ComputeMS)
			sw.send(streamStudyEvent{"study", meta, report.BuildDocument(res)})
			return
		}
	}
}

// streamWriter serialises NDJSON events and flushes after each one. Write
// errors latch: once the client is gone every later send is a no-op and
// the handler unwinds via context cancellation.
type streamWriter struct {
	enc     *json.Encoder
	flusher http.Flusher
	events  *obs.CounterVec // sent events by type; nil disables counting
	failed  bool
}

func (s *Server) newStreamWriter(w http.ResponseWriter, f http.Flusher) *streamWriter {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	return &streamWriter{enc: json.NewEncoder(w), flusher: f, events: s.obs.streamEvents}
}

func (sw *streamWriter) send(v any) {
	if sw.failed {
		return
	}
	if err := sw.enc.Encode(v); err != nil {
		sw.failed = true
		return
	}
	sw.flusher.Flush()
	if sw.events != nil {
		sw.events.With(streamEventName(v)).Inc()
	}
}

// streamEventName maps a wire event to its metrics label.
func streamEventName(v any) string {
	switch v.(type) {
	case streamMetaEvent:
		return "meta"
	case streamAppEvent:
		return "app"
	case streamHeartbeatEvent:
		return "heartbeat"
	case streamStudyEvent:
		return "study"
	case batchMetaEvent:
		return "meta"
	case batchJobEvent:
		return "job"
	case batchDoneEvent:
		return "batch"
	case mcMetaEvent:
		return "meta"
	case mcProgressEvent:
		return "mc_progress"
	case mcCellEvent:
		return "mc_cell"
	case mcResultEvent:
		return "mc"
	case opsMetaEvent:
		return "meta"
	case opsRunEvent:
		return "run"
	case streamErrorEvent:
		return "error"
	default:
		return "unknown"
	}
}
