package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/ramp-sim/ramp/internal/jobs"
	"github.com/ramp-sim/ramp/internal/scaling"
	"github.com/ramp-sim/ramp/internal/sim"
	"github.com/ramp-sim/ramp/internal/workload"
)

// postJSON issues a POST with a JSON body against the handler.
func postJSON(t *testing.T, s *Server, target string, body any, header map[string]string) (*httptest.ResponseRecorder, map[string]json.RawMessage) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, target, bytes.NewReader(raw))
	req.Header.Set("Content-Type", "application/json")
	for k, v := range header {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	var decoded map[string]json.RawMessage
	if err := json.Unmarshal(rec.Body.Bytes(), &decoded); err != nil {
		t.Fatalf("%s: bad JSON response %q: %v", target, rec.Body.String(), err)
	}
	return rec, decoded
}

// submitBatch posts jobs and decodes the 202 payload.
func submitBatch(t *testing.T, s *Server, jobs []BatchJobRequest, tenant string) BatchSubmitResponse {
	t.Helper()
	header := map[string]string{}
	if tenant != "" {
		header["X-Tenant"] = tenant
	}
	rec, _ := postJSON(t, s, "/v1/batch", BatchRequest{Jobs: jobs}, header)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202 (body %s)", rec.Code, rec.Body.String())
	}
	var resp BatchSubmitResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	return resp
}

// waitBatchDone polls the status endpoint until done or the deadline.
func waitBatchDone(t *testing.T, s *Server, batchID string) jobs.BatchStatus {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		rec, _ := get(t, s, "/v1/batch/"+batchID)
		if rec.Code != http.StatusOK {
			t.Fatalf("status = %d for batch %s (body %s)", rec.Code, batchID, rec.Body.String())
		}
		var resp BatchStatusResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Batch.Done {
			return resp.Batch
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("batch %s not done before deadline", batchID)
	return jobs.BatchStatus{}
}

// TestBatchRunsEachUniqueStudyOnce is the subsystem's acceptance test: a
// 200-config batch with 50% duplicates runs each unique study exactly
// once, every duplicate position shares the deduplicated job's ID, and a
// job's result document is byte-identical to the one a serial /v1/study
// request for the same config produces.
func TestBatchRunsEachUniqueStudyOnce(t *testing.T) {
	var calls atomic.Int64
	// CacheSize must hold all unique results so the serial probe below is
	// a guaranteed hit; the default LRU bound (64) would evict early keys.
	s := newTestServer(t, func(c *Config) { c.BatchWorkers = 8; c.CacheSize = 256 })
	s.runStudy = func(ctx context.Context, cfg sim.Config, profiles []workload.Profile,
		techs []scaling.Technology, opts sim.StudyOptions) (*sim.StudyResult, error) {
		calls.Add(1)
		return stubResult(cfg, techs), nil
	}

	const unique, total = 100, 200
	reqs := make([]BatchJobRequest, 0, total)
	for i := 0; i < total; i++ {
		var r BatchJobRequest
		r.Apps = []string{"ammp"}
		r.Instructions = int64(1000 + i%unique) // 100 distinct budgets, each twice
		reqs = append(reqs, r)
	}
	resp := submitBatch(t, s, reqs, "")
	if resp.UniqueJobs != unique || resp.Deduped != total-unique {
		t.Fatalf("unique=%d deduped=%d, want %d/%d", resp.UniqueJobs, resp.Deduped, unique, total-unique)
	}
	if len(resp.JobIDs) != total {
		t.Fatalf("job_ids = %d, want %d", len(resp.JobIDs), total)
	}
	for i := unique; i < total; i++ {
		if resp.JobIDs[i] != resp.JobIDs[i-unique] {
			t.Fatalf("position %d did not dedup onto %d: %s vs %s",
				i, i-unique, resp.JobIDs[i], resp.JobIDs[i-unique])
		}
	}

	final := waitBatchDone(t, s, resp.BatchID)
	if got := calls.Load(); got != unique {
		t.Errorf("simulations run = %d, want exactly %d", got, unique)
	}
	if final.Counts[jobs.StateDone] != unique {
		t.Fatalf("done jobs = %d, want %d (counts %+v)", final.Counts[jobs.StateDone], unique, final.Counts)
	}

	// Byte-identical to the serial path: the batch job's "study" document
	// must equal the /v1/study document for the same config.
	rec, jobBody := get(t, s, "/v1/batch/"+resp.BatchID+"/jobs/"+resp.JobIDs[0])
	if rec.Code != http.StatusOK {
		t.Fatalf("job result status = %d (body %s)", rec.Code, rec.Body.String())
	}
	_, serialBody := get(t, s, "/v1/study?apps=ammp&instructions=1000")
	if !bytes.Equal(jobBody["study"], serialBody["study"]) {
		t.Error("batch job study document differs from serial /v1/study document")
	}

	// The batch's results warmed the shared result cache: the serial
	// request above was a hit, not a new simulation.
	if got := calls.Load(); got != unique {
		t.Errorf("serial request after batch re-ran a simulation (calls %d)", got)
	}
}

// TestBatchDedupsAgainstResultCache: configs already in the result cache
// complete without touching the simulator again.
func TestBatchDedupsAgainstResultCache(t *testing.T) {
	var calls atomic.Int64
	s := newTestServer(t, nil)
	s.runStudy = func(ctx context.Context, cfg sim.Config, profiles []workload.Profile,
		techs []scaling.Technology, opts sim.StudyOptions) (*sim.StudyResult, error) {
		calls.Add(1)
		return stubResult(cfg, techs), nil
	}
	get(t, s, "/v1/study?apps=ammp") // warm the cache
	if calls.Load() != 1 {
		t.Fatalf("warmup ran %d simulations", calls.Load())
	}
	var r BatchJobRequest
	r.Apps = []string{"ammp"}
	resp := submitBatch(t, s, []BatchJobRequest{r}, "")
	final := waitBatchDone(t, s, resp.BatchID)
	if final.Counts[jobs.StateDone] != 1 || calls.Load() != 1 {
		t.Errorf("cached config re-simulated: counts=%+v calls=%d", final.Counts, calls.Load())
	}
}

// TestBatchMCJob: an MC item runs the deterministic study through the
// shared flight and then samples; the result document is served once done.
func TestBatchMCJob(t *testing.T) {
	var calls atomic.Int64
	s := newTestServer(t, nil)
	s.runStudy = mcStubRunStudy(&calls)
	var r BatchJobRequest
	r.Kind = "mc"
	r.Apps = []string{"ammp"}
	r.Techs = []string{"180nm"}
	r.Samples = 64
	r.Seed = 7
	resp := submitBatch(t, s, []BatchJobRequest{r}, "")
	final := waitBatchDone(t, s, resp.BatchID)
	if final.Counts[jobs.StateDone] != 1 {
		t.Fatalf("mc job counts = %+v", final.Counts)
	}
	rec, body := get(t, s, "/v1/batch/"+resp.BatchID+"/jobs/"+resp.JobIDs[0])
	if rec.Code != http.StatusOK {
		t.Fatalf("mc result status = %d (body %s)", rec.Code, rec.Body.String())
	}
	var mc sim.MCResult
	if err := json.Unmarshal(body["mc"], &mc); err != nil {
		t.Fatal(err)
	}
	if mc.TotalReplicas == 0 || len(mc.Cells) == 0 {
		t.Errorf("mc result empty: replicas=%d cells=%d", mc.TotalReplicas, len(mc.Cells))
	}
	if calls.Load() != 1 {
		t.Errorf("deterministic study ran %d times, want 1", calls.Load())
	}
}

// TestBatchSurvivesClientDisconnect: killing the status stream mid-batch
// loses nothing — queued jobs still run to completion and the batch stays
// pollable.
func TestBatchSurvivesClientDisconnect(t *testing.T) {
	release := make(chan struct{})
	var calls atomic.Int64
	s := newTestServer(t, func(c *Config) { c.BatchWorkers = 1 })
	s.runStudy = func(ctx context.Context, cfg sim.Config, profiles []workload.Profile,
		techs []scaling.Technology, opts sim.StudyOptions) (*sim.StudyResult, error) {
		calls.Add(1)
		select {
		case <-release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return stubResult(cfg, techs), nil
	}
	reqs := make([]BatchJobRequest, 3)
	for i := range reqs {
		reqs[i].Apps = []string{"ammp"}
		reqs[i].Instructions = int64(1000 + i)
	}
	resp := submitBatch(t, s, reqs, "")

	// Open the stream with a cancellable request and sever it while the
	// first job is still blocked in the executor.
	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest(http.MethodGet, "/v1/batch/"+resp.BatchID+"/stream", nil).WithContext(ctx)
	streamDone := make(chan struct{})
	go func() {
		defer close(streamDone)
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, req)
	}()
	for calls.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	<-streamDone

	close(release)
	final := waitBatchDone(t, s, resp.BatchID)
	if final.Counts[jobs.StateDone] != 3 {
		t.Errorf("after disconnect: counts = %+v, want 3 done", final.Counts)
	}
}

// TestBatchStreamEvents: the stream opens with meta, replays current job
// states, and terminates with a batch event once everything is done.
func TestBatchStreamEvents(t *testing.T) {
	s := newTestServer(t, nil)
	s.runStudy = func(ctx context.Context, cfg sim.Config, profiles []workload.Profile,
		techs []scaling.Technology, opts sim.StudyOptions) (*sim.StudyResult, error) {
		return stubResult(cfg, techs), nil
	}
	var r BatchJobRequest
	r.Apps = []string{"ammp"}
	resp := submitBatch(t, s, []BatchJobRequest{r}, "")
	waitBatchDone(t, s, resp.BatchID)

	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/batch/"+resp.BatchID+"/stream", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content type = %q", ct)
	}
	lines := strings.Split(strings.TrimSpace(rec.Body.String()), "\n")
	if len(lines) < 3 {
		t.Fatalf("stream sent %d events, want ≥3 (meta, job, batch)", len(lines))
	}
	var first struct {
		SchemaVersion int    `json:"schema_version"`
		Event         string `json:"event"`
		JobsTotal     int    `json:"jobs_total"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatal(err)
	}
	if first.Event != "meta" || first.SchemaVersion != SchemaVersion || first.JobsTotal != 1 {
		t.Errorf("first event = %+v, want meta with schema_version and jobs_total", first)
	}
	var last struct {
		Event string           `json:"event"`
		Batch jobs.BatchStatus `json:"batch"`
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
		t.Fatal(err)
	}
	if last.Event != "batch" || !last.Batch.Done {
		t.Errorf("last event = %+v, want terminal batch event with done=true", last)
	}
}

// TestBatchCancellation: DELETE cancels the whole batch; blocked jobs
// unwind via context cancellation and their result endpoint reports the
// failure envelope.
func TestBatchCancellation(t *testing.T) {
	started := make(chan struct{}, 8)
	s := newTestServer(t, func(c *Config) { c.BatchWorkers = 1 })
	s.runStudy = func(ctx context.Context, cfg sim.Config, profiles []workload.Profile,
		techs []scaling.Technology, opts sim.StudyOptions) (*sim.StudyResult, error) {
		started <- struct{}{}
		<-ctx.Done()
		return nil, ctx.Err()
	}
	reqs := make([]BatchJobRequest, 2)
	for i := range reqs {
		reqs[i].Apps = []string{"ammp"}
		reqs[i].Instructions = int64(1000 + i)
	}
	resp := submitBatch(t, s, reqs, "")
	<-started

	req := httptest.NewRequest(http.MethodDelete, "/v1/batch/"+resp.BatchID, nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("cancel status = %d (body %s)", rec.Code, rec.Body.String())
	}
	final := waitBatchDone(t, s, resp.BatchID)
	if final.Counts[jobs.StateCancelled] != 2 {
		t.Errorf("counts = %+v, want 2 cancelled", final.Counts)
	}
	rec, body := get(t, s, "/v1/batch/"+resp.BatchID+"/jobs/"+resp.JobIDs[0])
	if rec.Code == http.StatusOK {
		t.Fatalf("cancelled job served a result (status %d)", rec.Code)
	}
	if _, ok := body["error"]; !ok {
		t.Error("cancelled job's result endpoint carries no error envelope")
	}
}

// TestBatchTenantQuota429: per-tenant admission rejections surface as 429
// with the queue-aware Retry-After header and the overloaded code.
func TestBatchTenantQuota429(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	s := newTestServer(t, func(c *Config) { c.TenantInflight = 1; c.BatchWorkers = 1 })
	s.runStudy = func(ctx context.Context, cfg sim.Config, profiles []workload.Profile,
		techs []scaling.Technology, opts sim.StudyOptions) (*sim.StudyResult, error) {
		<-release
		return stubResult(cfg, techs), nil
	}
	var r1, r2 BatchJobRequest
	r1.Apps = []string{"ammp"}
	r2.Apps = []string{"gcc"}
	submitBatch(t, s, []BatchJobRequest{r1}, "alice")

	rec, body := postJSON(t, s, "/v1/batch", BatchRequest{Jobs: []BatchJobRequest{r2}},
		map[string]string{"X-Tenant": "alice"})
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("over-quota status = %d, want 429 (body %s)", rec.Code, rec.Body.String())
	}
	if ra, err := strconv.Atoi(rec.Header().Get("Retry-After")); err != nil || ra < 1 {
		t.Errorf("Retry-After = %q, want a positive integer", rec.Header().Get("Retry-After"))
	}
	var eb ErrorBody
	if err := json.Unmarshal(body["error"], &eb); err != nil || eb.Code != CodeOverloaded {
		t.Errorf("error code = %q (%v), want %q", eb.Code, err, CodeOverloaded)
	}

	// A different tenant is unaffected.
	if rec, _ := postJSON(t, s, "/v1/batch", BatchRequest{Jobs: []BatchJobRequest{r2}},
		map[string]string{"X-Tenant": "bob"}); rec.Code != http.StatusAccepted {
		t.Errorf("bob blocked by alice's quota: %d", rec.Code)
	}
}

// TestBatchValidation covers the submission-side 400s.
func TestBatchValidation(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.BatchMaxJobs = 4 })
	mkStudy := func(app string) BatchJobRequest {
		var r BatchJobRequest
		r.Apps = []string{app}
		return r
	}
	t.Run("empty", func(t *testing.T) {
		rec, _ := postJSON(t, s, "/v1/batch", BatchRequest{}, nil)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("status = %d, want 400", rec.Code)
		}
	})
	t.Run("over max jobs", func(t *testing.T) {
		reqs := make([]BatchJobRequest, 5)
		for i := range reqs {
			reqs[i] = mkStudy("ammp")
		}
		rec, _ := postJSON(t, s, "/v1/batch", BatchRequest{Jobs: reqs}, nil)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("status = %d, want 400", rec.Code)
		}
	})
	t.Run("unknown kind", func(t *testing.T) {
		r := mkStudy("ammp")
		r.Kind = "bogus"
		rec, _ := postJSON(t, s, "/v1/batch", BatchRequest{Jobs: []BatchJobRequest{r}}, nil)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("status = %d, want 400", rec.Code)
		}
	})
	t.Run("mc fields on study kind", func(t *testing.T) {
		r := mkStudy("ammp")
		r.Samples = 100
		rec, body := postJSON(t, s, "/v1/batch", BatchRequest{Jobs: []BatchJobRequest{r}}, nil)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("status = %d, want 400", rec.Code)
		}
		var eb ErrorBody
		_ = json.Unmarshal(body["error"], &eb)
		if !strings.Contains(eb.Message, "jobs[0]") {
			t.Errorf("error does not name the offending item: %q", eb.Message)
		}
	})
	t.Run("bad tenant", func(t *testing.T) {
		rec, _ := postJSON(t, s, "/v1/batch", BatchRequest{Jobs: []BatchJobRequest{mkStudy("ammp")}},
			map[string]string{"X-Tenant": "no spaces allowed"})
		if rec.Code != http.StatusBadRequest {
			t.Errorf("status = %d, want 400", rec.Code)
		}
	})
	t.Run("unknown batch", func(t *testing.T) {
		rec, _ := get(t, s, "/v1/batch/nope")
		if rec.Code != http.StatusNotFound {
			t.Errorf("status = %d, want 404", rec.Code)
		}
	})
}

// TestReadyzBacklogHighWater: /readyz flips to 503 while the job queue is
// past the high-water mark and recovers when it drains.
func TestReadyzBacklogHighWater(t *testing.T) {
	release := make(chan struct{})
	s := newTestServer(t, func(c *Config) { c.BatchWorkers = 1; c.ReadyHighWater = 1 })
	s.runStudy = func(ctx context.Context, cfg sim.Config, profiles []workload.Profile,
		techs []scaling.Technology, opts sim.StudyOptions) (*sim.StudyResult, error) {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return stubResult(cfg, techs), nil
	}
	reqs := make([]BatchJobRequest, 4)
	for i := range reqs {
		reqs[i].Apps = []string{"ammp"}
		reqs[i].Instructions = int64(1000 + i)
	}
	resp := submitBatch(t, s, reqs, "")
	// One job runs; with ≥2 queued the backlog exceeds the high-water mark.
	deadline := time.Now().Add(2 * time.Second)
	for s.jobs.Depth() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	rec, body := get(t, s, "/readyz")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("backlogged /readyz = %d, want 503 (body %s)", rec.Code, rec.Body.String())
	}
	var status string
	_ = json.Unmarshal(body["status"], &status)
	if status != "backlogged" {
		t.Errorf("status = %q, want backlogged", status)
	}
	close(release)
	waitBatchDone(t, s, resp.BatchID)
	if rec, _ := get(t, s, "/readyz"); rec.Code != http.StatusOK {
		t.Errorf("drained /readyz = %d, want 200", rec.Code)
	}
}

// TestErrorEnvelopeEverywhere is the cross-endpoint contract test: every
// endpoint's failure responses carry schema_version and the
// {"error":{code,message}} envelope.
func TestErrorEnvelopeEverywhere(t *testing.T) {
	s := newTestServer(t, nil)
	cases := []struct {
		name   string
		method string
		target string
		body   string
		status int
	}{
		{"study bad app", http.MethodGet, "/v1/study?apps=nope", "", http.StatusBadRequest},
		{"study bad method", http.MethodDelete, "/v1/study", "", http.StatusBadRequest},
		{"stream bad app", http.MethodGet, "/v1/study/stream?apps=nope", "", http.StatusBadRequest},
		{"mc bad samples", http.MethodGet, "/v1/study/mc?samples=-5", "", http.StatusBadRequest},
		{"mttf bad tech", http.MethodGet, "/v1/mttf?techs=nope", "", http.StatusBadRequest},
		{"profiles bad method", http.MethodPost, "/v1/profiles", "{}", http.StatusMethodNotAllowed},
		{"trace no traces", http.MethodGet, "/v1/study/trace", "", http.StatusNotFound},
		{"metrics bad format", http.MethodGet, "/metrics?format=bogus", "", http.StatusBadRequest},
		{"batch bad method", http.MethodGet, "/v1/batch", "", http.StatusMethodNotAllowed},
		{"batch bad body", http.MethodPost, "/v1/batch", "{not json", http.StatusBadRequest},
		{"batch unknown id", http.MethodGet, "/v1/batch/nope", "", http.StatusNotFound},
		{"batch unknown stream", http.MethodGet, "/v1/batch/nope/stream", "", http.StatusNotFound},
		{"batch unknown job", http.MethodGet, "/v1/batch/nope/jobs/nope", "", http.StatusNotFound},
		{"batch bad subpath", http.MethodGet, "/v1/batch/x/bogus/extra/deep", "", http.StatusNotFound},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var req *http.Request
			if tc.body != "" {
				req = httptest.NewRequest(tc.method, tc.target, strings.NewReader(tc.body))
			} else {
				req = httptest.NewRequest(tc.method, tc.target, nil)
			}
			rec := httptest.NewRecorder()
			s.Handler().ServeHTTP(rec, req)
			if rec.Code != tc.status {
				t.Fatalf("status = %d, want %d (body %s)", rec.Code, tc.status, rec.Body.String())
			}
			var envelope ErrorResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &envelope); err != nil {
				t.Fatalf("response is not the error envelope: %q (%v)", rec.Body.String(), err)
			}
			if envelope.SchemaVersion != SchemaVersion {
				t.Errorf("schema_version = %d, want %d", envelope.SchemaVersion, SchemaVersion)
			}
			if envelope.Error.Code == "" || envelope.Error.Message == "" {
				t.Errorf("envelope incomplete: %+v", envelope.Error)
			}
		})
	}
}

// TestJobMetricNamesPinned pins the jobs/admission metric names in both
// expositions: renaming them is an observability contract break.
func TestJobMetricNamesPinned(t *testing.T) {
	s := newTestServer(t, nil)
	s.runStudy = func(ctx context.Context, cfg sim.Config, profiles []workload.Profile,
		techs []scaling.Technology, opts sim.StudyOptions) (*sim.StudyResult, error) {
		return stubResult(cfg, techs), nil
	}
	var r BatchJobRequest
	r.Apps = []string{"ammp"}
	resp := submitBatch(t, s, []BatchJobRequest{r}, "")
	waitBatchDone(t, s, resp.BatchID)

	_, body := get(t, s, "/metrics")
	if _, ok := body["admission_queue_depth"]; !ok {
		t.Error("JSON /metrics lacks admission_queue_depth")
	}
	var jobStats map[string]json.RawMessage
	if err := json.Unmarshal(body["jobs"], &jobStats); err != nil {
		t.Fatalf("JSON /metrics jobs block: %v (body %s)", err, body["jobs"])
	}
	for _, key := range []string{"queued", "running", "done_total", "failed_total", "capacity"} {
		if _, ok := jobStats[key]; !ok {
			t.Errorf("JSON /metrics jobs block lacks %q", key)
		}
	}
	var runtimeStats map[string]json.RawMessage
	if err := json.Unmarshal(body["runtime"], &runtimeStats); err != nil {
		t.Fatalf("JSON /metrics runtime block: %v (body %s)", err, body["runtime"])
	}
	for _, key := range []string{"goroutines", "heap_bytes", "gc_pause_total_seconds", "num_gc"} {
		if _, ok := runtimeStats[key]; !ok {
			t.Errorf("JSON /metrics runtime block lacks %q", key)
		}
	}
	var ledgerStats map[string]json.RawMessage
	if err := json.Unmarshal(body["ledger"], &ledgerStats); err != nil {
		t.Fatalf("JSON /metrics ledger block: %v (body %s)", err, body["ledger"])
	}
	for _, key := range []string{"appended", "retained", "capacity", "dropped"} {
		if _, ok := ledgerStats[key]; !ok {
			t.Errorf("JSON /metrics ledger block lacks %q", key)
		}
	}

	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics?format=prometheus", nil))
	text := rec.Body.String()
	for _, name := range []string{
		"ramp_admission_queue_depth",
		"ramp_jobs_queued",
		"ramp_jobs_running",
		"ramp_jobs_done",
		"ramp_jobs_failed",
		"ramp_batches_submitted_total",
		"ramp_job_runs_total",
		"ramp_go_goroutines",
		"ramp_go_heap_bytes",
		"ramp_go_gc_pause_seconds_total",
		"ramp_runs_recorded_total",
		"ramp_ledger_retained_runs",
		"ramp_ledger_dropped_events_total",
	} {
		if !strings.Contains(text, name) {
			t.Errorf("prometheus exposition lacks %s", name)
		}
	}
	if !strings.Contains(text, `ramp_jobs_done`) || !strings.Contains(text, "ramp_jobs_done 1") {
		t.Errorf("ramp_jobs_done should read 1 after one completed job:\n%s",
			firstMatchingLine(text, "ramp_jobs_done"))
	}
}

// firstMatchingLine returns the exposition lines containing substr, for
// focused failure messages.
func firstMatchingLine(text, substr string) string {
	var out []string
	for _, line := range strings.Split(text, "\n") {
		if strings.Contains(line, substr) {
			out = append(out, line)
		}
	}
	return fmt.Sprint(out)
}

// TestBatchRetryOnTransientFailure: a job whose executor fails twice with
// a retryable error succeeds on the third attempt, visible in the
// snapshot's attempt counter.
func TestBatchRetryOnTransientFailure(t *testing.T) {
	var calls atomic.Int64
	s := newTestServer(t, func(c *Config) { c.JobRetryBackoff = time.Millisecond })
	s.runStudy = func(ctx context.Context, cfg sim.Config, profiles []workload.Profile,
		techs []scaling.Technology, opts sim.StudyOptions) (*sim.StudyResult, error) {
		if calls.Add(1) < 3 {
			return nil, fmt.Errorf("transient infrastructure wobble")
		}
		return stubResult(cfg, techs), nil
	}
	var r BatchJobRequest
	r.Apps = []string{"ammp"}
	resp := submitBatch(t, s, []BatchJobRequest{r}, "")
	final := waitBatchDone(t, s, resp.BatchID)
	if final.Counts[jobs.StateDone] != 1 {
		t.Fatalf("counts = %+v, want done after retries", final.Counts)
	}
	if final.Jobs[0].Attempts != 3 {
		t.Errorf("attempts = %d, want 3", final.Jobs[0].Attempts)
	}
}

// TestBatchBadRequestNotRetried: a permanent (client) error fails the job
// on the first attempt — no retry burn on hopeless work.
func TestBatchBadRequestNotRetried(t *testing.T) {
	var calls atomic.Int64
	s := newTestServer(t, func(c *Config) { c.JobRetryBackoff = time.Millisecond })
	s.runStudy = func(ctx context.Context, cfg sim.Config, profiles []workload.Profile,
		techs []scaling.Technology, opts sim.StudyOptions) (*sim.StudyResult, error) {
		calls.Add(1)
		return nil, &badRequestError{fmt.Errorf("synthetic client error")}
	}
	var r BatchJobRequest
	r.Apps = []string{"ammp"}
	resp := submitBatch(t, s, []BatchJobRequest{r}, "")
	final := waitBatchDone(t, s, resp.BatchID)
	if final.Counts[jobs.StateFailed] != 1 || calls.Load() != 1 {
		t.Errorf("counts=%+v calls=%d, want 1 failed after exactly 1 attempt", final.Counts, calls.Load())
	}
}
