package server

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/ramp-sim/ramp/internal/obs"
	"github.com/ramp-sim/ramp/internal/scaling"
	"github.com/ramp-sim/ramp/internal/sim"
	"github.com/ramp-sim/ramp/internal/workload"
)

// opsRuns fetches /v1/ops/runs with the given query and decodes it.
func opsRuns(t *testing.T, s *Server, query string) OpsRunsResponse {
	t.Helper()
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/ops/runs"+query, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/v1/ops/runs%s status = %d (body %s)", query, rec.Code, rec.Body.String())
	}
	var resp OpsRunsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestOpsRunsEndpoint covers the list surface: the envelope, one record
// per serving (miss then hit), and every filter axis.
func TestOpsRunsEndpoint(t *testing.T) {
	s := newTestServer(t, nil)
	s.runStudy = func(ctx context.Context, cfg sim.Config, profiles []workload.Profile,
		techs []scaling.Technology, opts sim.StudyOptions) (*sim.StudyResult, error) {
		return stubResult(cfg, techs), nil
	}
	const target = "/v1/study?apps=ammp&techs=130nm"
	for i := 0; i < 2; i++ { // miss, then result-cache hit
		if rec, _ := get(t, s, target); rec.Code != http.StatusOK {
			t.Fatalf("study %d status = %d", i, rec.Code)
		}
	}

	resp := opsRuns(t, s, "")
	if resp.SchemaVersion != SchemaVersion {
		t.Errorf("schema_version = %d, want %d", resp.SchemaVersion, SchemaVersion)
	}
	if resp.Ledger.Appended != 2 || resp.Ledger.Retained != 2 {
		t.Fatalf("ledger stats = %+v, want 2 appended", resp.Ledger)
	}
	if len(resp.Runs) != 2 {
		t.Fatalf("runs = %d, want 2 (newest first)", len(resp.Runs))
	}
	latest, first := resp.Runs[0], resp.Runs[1]
	if latest.ID <= first.ID {
		t.Errorf("runs not newest-first: %d then %d", latest.ID, first.ID)
	}
	if first.ResultCache != obs.ResultMiss || latest.ResultCache != obs.ResultHit {
		t.Errorf("result cache = %q then %q, want miss then hit",
			first.ResultCache, latest.ResultCache)
	}
	for _, rec := range resp.Runs {
		if rec.Kind != "study" || rec.Outcome != obs.RunOK {
			t.Errorf("record = kind %q outcome %q, want study/ok", rec.Kind, rec.Outcome)
		}
		if rec.Key == "" || rec.RequestID == "" || rec.TraceID == "" {
			t.Errorf("record missing identity: %+v", rec)
		}
		if rec.Tenant != "default" {
			t.Errorf("tenant = %q, want default", rec.Tenant)
		}
		if rec.Fidelity != string(sim.FidelityExact) {
			t.Errorf("fidelity = %q, want exact", rec.Fidelity)
		}
		if rec.WallMS < 0 {
			t.Errorf("wall_ms = %v", rec.WallMS)
		}
	}
	if first.Instructions != 50_000 { // one profile × the test default
		t.Errorf("instructions = %d, want 50000", first.Instructions)
	}

	// Filters.
	if got := opsRuns(t, s, "?outcome=ok"); len(got.Runs) != 2 {
		t.Errorf("outcome=ok runs = %d, want 2", len(got.Runs))
	}
	if got := opsRuns(t, s, "?outcome=error"); len(got.Runs) != 0 {
		t.Errorf("outcome=error runs = %d, want 0 (and [] not null)", len(got.Runs))
	}
	if got := opsRuns(t, s, "?kind=study&key="+first.Key); len(got.Runs) != 2 {
		t.Errorf("kind+key filter runs = %d, want 2", len(got.Runs))
	}
	if got := opsRuns(t, s, "?tenant=nobody"); len(got.Runs) != 0 {
		t.Errorf("tenant=nobody runs = %d, want 0", len(got.Runs))
	}
	if got := opsRuns(t, s, "?limit=1"); len(got.Runs) != 1 || got.Runs[0].ID != latest.ID {
		t.Errorf("limit=1 = %d records, want the newest", len(got.Runs))
	}

	// Bad limits are rejected.
	for _, bad := range []string{"0", "-3", "x"} {
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec,
			httptest.NewRequest(http.MethodGet, "/v1/ops/runs?limit="+bad, nil))
		if rec.Code != http.StatusBadRequest {
			t.Errorf("limit=%s status = %d, want 400", bad, rec.Code)
		}
	}

	// Empty-ledger responses encode runs as [], not null.
	s2 := newTestServer(t, nil)
	rec := httptest.NewRecorder()
	s2.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/ops/runs", nil))
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(rec.Body.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(string(raw["runs"])); got != "[]" {
		t.Errorf("empty ledger runs = %s, want []", got)
	}
}

// TestOpsRunByID: the detail endpoint, plus its 400/404 answers.
func TestOpsRunByID(t *testing.T) {
	s := newTestServer(t, nil)
	s.runStudy = func(ctx context.Context, cfg sim.Config, profiles []workload.Profile,
		techs []scaling.Technology, opts sim.StudyOptions) (*sim.StudyResult, error) {
		return stubResult(cfg, techs), nil
	}
	if rec, _ := get(t, s, "/v1/study?apps=ammp&techs=130nm"); rec.Code != http.StatusOK {
		t.Fatalf("study status = %d", rec.Code)
	}
	want := opsRuns(t, s, "").Runs[0]

	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet,
		"/v1/ops/runs/"+strconv.FormatUint(want.ID, 10), nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("detail status = %d", rec.Code)
	}
	var resp OpsRunResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Run.ID != want.ID || resp.Run.Key != want.Key {
		t.Errorf("detail = %+v, want %+v", resp.Run, want)
	}

	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/ops/runs/999", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("unknown id status = %d, want 404", rec.Code)
	}
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/ops/runs/nope", nil))
	if rec.Code != http.StatusBadRequest {
		t.Errorf("bad id status = %d, want 400", rec.Code)
	}
}

// TestOpsDisabled: a negative ledger size turns the whole ops plane off —
// every surface answers 404 with the error envelope.
func TestOpsDisabled(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.LedgerSize = -1 })
	for _, target := range []string{"/v1/ops/runs", "/v1/ops/runs/1", "/v1/ops/tail"} {
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, target, nil))
		if rec.Code != http.StatusNotFound {
			t.Errorf("%s status = %d, want 404", target, rec.Code)
		}
		var er ErrorResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil {
			t.Errorf("%s: not the error envelope: %s", target, rec.Body.String())
		}
	}
	// Serving still works without a ledger.
	s.runStudy = func(ctx context.Context, cfg sim.Config, profiles []workload.Profile,
		techs []scaling.Technology, opts sim.StudyOptions) (*sim.StudyResult, error) {
		return stubResult(cfg, techs), nil
	}
	if rec, _ := get(t, s, "/v1/study?apps=ammp&techs=130nm"); rec.Code != http.StatusOK {
		t.Errorf("study with ledger disabled status = %d", rec.Code)
	}
}

// TestOpsTailStream: meta first, then the replay (oldest first), then live
// records as runs complete — with no duplicates across the replay/live
// boundary.
func TestOpsTailStream(t *testing.T) {
	s := newTestServer(t, nil)
	s.runStudy = func(ctx context.Context, cfg sim.Config, profiles []workload.Profile,
		techs []scaling.Technology, opts sim.StudyOptions) (*sim.StudyResult, error) {
		return stubResult(cfg, techs), nil
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Two runs before the tail starts: both must replay in ID order.
	for _, target := range []string{
		"/v1/study?apps=ammp&techs=130nm",
		"/v1/study?apps=gzip&techs=130nm",
	} {
		if rec, _ := get(t, s, target); rec.Code != http.StatusOK {
			t.Fatalf("%s status = %d", target, rec.Code)
		}
	}

	resp, sc := openStream(t, ts, "/v1/ops/tail?replay=10")
	defer resp.Body.Close()

	type event struct {
		SchemaVersion int             `json:"schema_version"`
		Event         string          `json:"event"`
		RequestID     string          `json:"request_id"`
		Run           obs.RunRecord   `json:"run"`
		Ledger        obs.LedgerStats `json:"ledger"`
	}
	next := func() event {
		t.Helper()
		for sc.Scan() {
			var ev event
			if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
				t.Fatalf("bad stream line %q: %v", sc.Text(), err)
			}
			if ev.Event == "heartbeat" {
				continue
			}
			return ev
		}
		t.Fatalf("stream ended early: %v", sc.Err())
		return event{}
	}

	metaEv := next()
	if metaEv.Event != "meta" || metaEv.SchemaVersion != SchemaVersion ||
		metaEv.RequestID == "" || metaEv.Ledger.Appended != 2 {
		t.Fatalf("meta = %+v", metaEv)
	}
	r1, r2 := next(), next()
	if r1.Event != "run" || r2.Event != "run" || r1.Run.ID != 1 || r2.Run.ID != 2 {
		t.Fatalf("replay = %+v then %+v, want runs 1 and 2 oldest-first", r1, r2)
	}

	// A run completing while the tail is open arrives live, exactly once.
	if rec, _ := get(t, s, "/v1/study?apps=ammp&techs=130nm"); rec.Code != http.StatusOK {
		t.Fatalf("live study status = %d", rec.Code)
	}
	r3 := next()
	if r3.Event != "run" || r3.Run.ID != 3 || r3.Run.ResultCache != obs.ResultHit {
		t.Fatalf("live event = %+v, want run 3 (a cache hit)", r3)
	}
}

// TestOpsRunRecordCostsFromRealStudy runs a real (tiny) study and checks
// the cost half of the record: per-stage wall/CPU, cell counts, and
// stage-cache traffic — the attribution the ledger exists for.
func TestOpsRunRecordCostsFromRealStudy(t *testing.T) {
	s := newTestServer(t, nil)
	if rec, _ := get(t, s, "/v1/study?apps=ammp&techs=130nm"); rec.Code != http.StatusOK {
		t.Fatalf("study status = %d", rec.Code)
	}
	rec := opsRuns(t, s, "").Runs[0]
	for _, stage := range []string{"timing", "thermal", "fit"} {
		sc, ok := rec.Stages[stage]
		if !ok || sc.Count == 0 {
			t.Errorf("no %s stage cost in %+v", stage, rec.Stages)
			continue
		}
		if sc.CPUMS < 0 || sc.WallMS < 0 {
			t.Errorf("%s cost negative: %+v", stage, sc)
		}
	}
	if rec.Cells != 2 || rec.CellsComputed != 2 { // base + 130nm, cold caches
		t.Errorf("cells = %d computed %d, want 2/2", rec.Cells, rec.CellsComputed)
	}
	if rec.CPUMS <= 0 {
		t.Errorf("cpu_ms = %v, want > 0", rec.CPUMS)
	}
	puts := 0
	for _, c := range rec.Cache {
		puts += c.Puts
	}
	if puts == 0 {
		t.Errorf("no stage-cache traffic recorded: %+v", rec.Cache)
	}

	// MC runs land as kind "mc" with the total replica count (cells ×
	// samples). The endpoint streams NDJSON, so only the status matters.
	mcRec := httptest.NewRecorder()
	s.Handler().ServeHTTP(mcRec, httptest.NewRequest(http.MethodGet,
		"/v1/study/mc?apps=ammp&techs=130nm&samples=500&seed=1", nil))
	if mcRec.Code != http.StatusOK {
		t.Fatalf("mc status = %d", mcRec.Code)
	}
	mc := opsRuns(t, s, "?kind=mc").Runs
	if len(mc) != 1 || mc[0].Replicas != 1000 || mc[0].Outcome != obs.RunOK {
		t.Fatalf("mc records = %+v, want one ok record with 1000 replicas", mc)
	}
}

// TestOpsRunRecordFailure: a failed study is ledgered with outcome
// "error" and the failure message.
func TestOpsRunRecordFailure(t *testing.T) {
	s := newTestServer(t, nil)
	s.runStudy = func(ctx context.Context, cfg sim.Config, profiles []workload.Profile,
		techs []scaling.Technology, opts sim.StudyOptions) (*sim.StudyResult, error) {
		return nil, context.DeadlineExceeded
	}
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec,
		httptest.NewRequest(http.MethodGet, "/v1/study?apps=ammp&techs=130nm", nil))
	if rec.Code == http.StatusOK {
		t.Fatalf("study unexpectedly succeeded")
	}
	runs := opsRuns(t, s, "?outcome="+obs.RunDeadline).Runs
	if len(runs) != 1 || runs[0].Error == "" || runs[0].ResultCache != obs.ResultMiss {
		t.Fatalf("deadline records = %+v, want one with the message", runs)
	}
}

// TestTraceparentRoundTrip is the acceptance scenario: an inbound W3C
// traceparent on POST /v1/batch is echoed as a child on the response,
// carried through the job queue into the executor, and lands in the job's
// run record, the executor's logs, and a histogram exemplar in the
// Prometheus exposition — one trace ID joining all three.
func TestTraceparentRoundTrip(t *testing.T) {
	const (
		traceID = "4bf92f3577b34da6a3ce929d0e0e4736"
		spanID  = "00f067aa0ba902b7"
		inbound = "00-" + traceID + "-" + spanID + "-01"
	)
	var buf bytes.Buffer
	var mu sync.Mutex
	logger := slog.New(slog.NewJSONHandler(lockedBuf{&mu, &buf}, nil))
	s := newTestServer(t, func(c *Config) { c.Logger = logger })
	s.runStudy = func(ctx context.Context, cfg sim.Config, profiles []workload.Profile,
		techs []scaling.Technology, opts sim.StudyOptions) (*sim.StudyResult, error) {
		return stubResult(cfg, techs), nil
	}

	var r BatchJobRequest
	r.Apps = []string{"ammp"}
	rec, _ := postJSON(t, s, "/v1/batch", BatchRequest{Jobs: []BatchJobRequest{r}},
		map[string]string{"Traceparent": inbound, "X-Request-ID": "trace-probe"})
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit status = %d", rec.Code)
	}

	// The response carries a child of the inbound context: same trace,
	// a fresh span ID (the server's own span, not the caller's).
	echoed := rec.Header().Get("Traceparent")
	tc, ok := obs.ParseTraceparent(echoed)
	if !ok || tc.TraceID != traceID {
		t.Fatalf("echoed traceparent %q does not continue trace %s", echoed, traceID)
	}
	if tc.SpanID == spanID {
		t.Error("server re-used the caller's span ID")
	}

	// The HTTP latency histogram carries the trace as an exemplar.
	// Scraped before the status polling below: exemplars are last-write-
	// wins per bucket, and each poll lands with a fresh trace.
	if !strings.Contains(scrapeProm(t, s), `trace_id="`+traceID+`"`) {
		t.Error("prometheus exposition lacks an exemplar with the inbound trace ID")
	}

	var resp BatchSubmitResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	waitBatchDone(t, s, resp.BatchID)

	// The job's run record joined the trace.
	jobRuns := opsRuns(t, s, "?kind=job.study").Runs
	if len(jobRuns) != 1 {
		t.Fatalf("job records = %d, want 1", len(jobRuns))
	}
	jr := jobRuns[0]
	if jr.TraceID != traceID {
		t.Errorf("run record trace_id = %q, want %s", jr.TraceID, traceID)
	}
	if jr.RequestID != "trace-probe" {
		t.Errorf("run record request_id = %q, want trace-probe", jr.RequestID)
	}
	if jr.JobID == "" || jr.Attempt != 1 || jr.QueueMS < 0 {
		t.Errorf("job identity incomplete: %+v", jr)
	}

	// The executor's job logs carry the propagated IDs (span attrs share
	// the same source fields).
	mu.Lock()
	logs := buf.String()
	mu.Unlock()
	sawStart := false
	for _, line := range strings.Split(strings.TrimSpace(logs), "\n") {
		var entry map[string]any
		if json.Unmarshal([]byte(line), &entry) != nil {
			continue
		}
		if entry["msg"] == "job start" {
			sawStart = true
			if entry["request_id"] != "trace-probe" || entry["trace_id"] != traceID {
				t.Errorf("job start log lost the trace: %s", line)
			}
		}
	}
	if !sawStart {
		t.Error("no job start log line found")
	}
}

// TestRunWideEventLogged: every appended record emits the one-line "run"
// wide event with the run's dimensions as fields.
func TestRunWideEventLogged(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex
	logger := slog.New(slog.NewJSONHandler(lockedBuf{&mu, &buf}, nil))
	s := newTestServer(t, func(c *Config) { c.Logger = logger })
	s.runStudy = func(ctx context.Context, cfg sim.Config, profiles []workload.Profile,
		techs []scaling.Technology, opts sim.StudyOptions) (*sim.StudyResult, error) {
		return stubResult(cfg, techs), nil
	}
	if rec, _ := get(t, s, "/v1/study?apps=ammp&techs=130nm"); rec.Code != http.StatusOK {
		t.Fatalf("study status = %d", rec.Code)
	}

	mu.Lock()
	logs := buf.String()
	mu.Unlock()
	for _, line := range strings.Split(strings.TrimSpace(logs), "\n") {
		var entry map[string]any
		if json.Unmarshal([]byte(line), &entry) != nil {
			continue
		}
		if entry["msg"] != "run" {
			continue
		}
		if entry["kind"] != "study" || entry["outcome"] != obs.RunOK ||
			entry["result_cache"] != obs.ResultMiss {
			t.Fatalf("run event fields wrong: %s", line)
		}
		if entry["run_id"] == float64(0) || entry["key"] == "" || entry["trace_id"] == "" {
			t.Fatalf("run event missing identity: %s", line)
		}
		if _, ok := entry["wall_ms"].(float64); !ok {
			t.Fatalf("run event missing wall_ms: %s", line)
		}
		return
	}
	t.Fatal("no wide run event in the log")
}

// TestOpsTailUnderConcurrentRuns hammers the ledger from concurrent
// studies while a tail stream drains — the race-detector scenario for the
// append/subscribe/stream paths. The stream must stay parseable and
// deliver strictly increasing run IDs.
func TestOpsTailUnderConcurrentRuns(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.MaxQueue = 64 })
	s.runStudy = func(ctx context.Context, cfg sim.Config, profiles []workload.Profile,
		techs []scaling.Technology, opts sim.StudyOptions) (*sim.StudyResult, error) {
		return stubResult(cfg, techs), nil
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, sc := openStream(t, ts, "/v1/ops/tail")
	defer resp.Body.Close()

	const workers, perWorker = 4, 10
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				// Distinct instruction budgets force distinct keys — every
				// request is a fresh run record, some hits, some misses.
				target := "/v1/study?apps=ammp&techs=130nm&instructions=" +
					strconv.Itoa(10_000+(w*perWorker+i)%20)
				rec := httptest.NewRecorder()
				s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, target, nil))
				if rec.Code != http.StatusOK {
					t.Errorf("study status = %d", rec.Code)
				}
			}
		}(w)
	}
	wg.Wait()

	// Drain the stream until every surviving record has been seen or the
	// ledger says some were dropped for this slow subscriber.
	var lastID uint64
	seen := 0
	deadline := time.After(10 * time.Second)
	lines := make(chan []byte)
	go func() {
		defer close(lines)
		for sc.Scan() {
			line := append([]byte(nil), sc.Bytes()...)
			select {
			case lines <- line:
			case <-time.After(time.Second):
				return
			}
		}
	}()
	total := int(opsRuns(t, s, "?limit=1").Ledger.Appended)
	if total != workers*perWorker {
		t.Fatalf("appended = %d, want %d", total, workers*perWorker)
	}
drain:
	for seen < total {
		select {
		case line, ok := <-lines:
			if !ok {
				break drain
			}
			var ev struct {
				Event string        `json:"event"`
				Run   obs.RunRecord `json:"run"`
			}
			if err := json.Unmarshal(line, &ev); err != nil {
				t.Fatalf("unparseable stream line %q: %v", line, err)
			}
			if ev.Event != "run" {
				continue
			}
			if ev.Run.ID <= lastID {
				t.Fatalf("stream delivered ID %d after %d", ev.Run.ID, lastID)
			}
			lastID = ev.Run.ID
			seen++
		case <-deadline:
			break drain
		}
	}
	dropped := opsRuns(t, s, "?limit=1").Ledger.Dropped
	if uint64(seen)+dropped < uint64(total) {
		t.Fatalf("saw %d of %d records with only %d dropped", seen, total, dropped)
	}
}
