// Package server implements rampd, the reliability-evaluation service: an
// HTTP JSON API over the sim/workload/scaling layers that serves scaling
// studies and lifetime summaries to many concurrent clients without paying
// a cold simulation per query.
//
// Three mechanisms carry the load:
//
//   - a content-addressed result cache (LRU + TTL) keyed by the canonical
//     hash of (Config, profile set, technology nodes) — sim.StudyKey — so a
//     repeated request is served from memory in microseconds;
//   - singleflight request coalescing, so N concurrent identical requests
//     trigger exactly one simulation on the scheduler pool and share its
//     result;
//   - a bounded admission queue that sheds excess load with 429 +
//     Retry-After instead of queueing without bound, plus a per-study
//     compute deadline propagated into sim.RunStudyContext.
//
// Every request observes the shared sched.Counters, the cache counters,
// and the request/latency/coalescing metrics exported at /metrics.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math/rand/v2"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"github.com/ramp-sim/ramp/internal/core"
	"github.com/ramp-sim/ramp/internal/jobs"
	"github.com/ramp-sim/ramp/internal/obs"
	"github.com/ramp-sim/ramp/internal/report"
	"github.com/ramp-sim/ramp/internal/scaling"
	"github.com/ramp-sim/ramp/internal/sched"
	"github.com/ramp-sim/ramp/internal/sim"
	"github.com/ramp-sim/ramp/internal/workload"
)

// errOverloaded marks an admission-queue rejection; handlers translate it
// to 429 + Retry-After.
var errOverloaded = errors.New("server: admission queue full")

// SchemaVersion is the wire-format version carried by every JSON response
// (and by the first event of every NDJSON stream) as "schema_version".
//
// Versioning policy: additive changes — new fields, new endpoints, new
// event types — keep the version unchanged; clients must ignore unknown
// fields. The version increments only when an existing field's meaning,
// type, or presence changes incompatibly, and rampd then serves the new
// number on every endpoint simultaneously.
const SchemaVersion = 1

// Error codes carried in the error envelope's "code" field. The set is
// closed under the current schema version: clients may switch on it.
const (
	// CodeBadRequest: the request itself is invalid (unknown benchmark,
	// bad budget, malformed body).
	CodeBadRequest = "bad_request"
	// CodeMethodNotAllowed: wrong HTTP method for the endpoint.
	CodeMethodNotAllowed = "method_not_allowed"
	// CodeOverloaded: the admission queue is full; retry after the
	// Retry-After hint.
	CodeOverloaded = "overloaded"
	// CodeDeadlineExceeded: the study hit the server's compute deadline.
	CodeDeadlineExceeded = "deadline_exceeded"
	// CodeUnavailable: the client went away or the server is shutting
	// down mid-computation.
	CodeUnavailable = "unavailable"
	// CodeInternal: everything else.
	CodeInternal = "internal"
	// CodeNotReady: the requested job has not finished yet; poll the batch
	// status endpoint. (Additive to the original code set, same schema
	// version: clients switching on codes must ignore unknown ones.)
	CodeNotReady = "not_ready"
)

// ErrorBody is the machine-readable error payload of the envelope.
type ErrorBody struct {
	// Code is one of the Code* constants.
	Code string `json:"code"`
	// Message is the human-readable detail.
	Message string `json:"message"`
}

// ErrorResponse is the stable error envelope every non-2xx JSON response
// uses: {"schema_version":1,"error":{"code":"...","message":"..."}}. The
// request_id field (additive, omitted when unknown) echoes the X-Request-ID
// header so clients can correlate failures with server logs.
type ErrorResponse struct {
	SchemaVersion int       `json:"schema_version"`
	RequestID     string    `json:"request_id,omitempty"`
	Error         ErrorBody `json:"error"`
}

// Config parameterises a Server.
type Config struct {
	// Sim is the base simulation configuration; per-request instruction
	// budgets override Sim.Instructions within [1, MaxInstructions].
	Sim sim.Config
	// Registry resolves benchmark names; nil uses the Table 3 default set.
	Registry *workload.Registry
	// DefaultInstructions is the per-request budget when the request
	// leaves it unset; 0 falls back to Sim.Instructions.
	DefaultInstructions int64
	// MaxInstructions caps the per-request budget; 0 means 10× the
	// default. Requests above the cap are rejected with 400.
	MaxInstructions int64
	// CacheSize bounds the result cache entry count (default 64).
	CacheSize int
	// CacheTTL expires cached results; 0 disables expiry.
	CacheTTL time.Duration
	// MaxQueue bounds concurrently admitted studies (queued + running);
	// excess distinct requests are shed with 429 (default 4).
	MaxQueue int
	// ComputeTimeout is the per-study deadline enforced on the simulation
	// context; 0 disables it.
	ComputeTimeout time.Duration
	// RetryAfter is the hint returned with 429 responses (default 1s).
	RetryAfter time.Duration
	// Parallelism bounds each study's scheduler pool (0 = GOMAXPROCS).
	Parallelism int
	// CacheDir, when non-empty, spills the stage cache's artifacts
	// (timing traces, thermal series, finished cells) to disk so a
	// restarted rampd starts warm.
	CacheDir string
	// StageCacheEntries bounds each stage store's in-memory LRU
	// (default 256 per stage).
	StageCacheEntries int
	// StreamHeartbeat is the idle-connection heartbeat interval of
	// /v1/study/stream (default 10s).
	StreamHeartbeat time.Duration
	// MaxMCSamples caps the per-cell replica count a /v1/study/mc request
	// may ask for (default 200000). Requests above the cap get 400.
	MaxMCSamples int
	// MaxMCReplicas caps the total replica count — samples × grid cells —
	// of one /v1/study/mc request (default 2000000). Requests above the
	// cap get 400.
	MaxMCReplicas int
	// Logger receives structured request and study logs; nil discards
	// them (tests stay quiet by default).
	Logger *slog.Logger
	// TraceRetain bounds the study traces retained for /v1/study/trace
	// (default 8).
	TraceRetain int
	// TraceSpanLimit bounds the spans captured per study trace
	// (default 16384); excess spans are dropped, not buffered.
	TraceSpanLimit int
	// BatchCapacity bounds live (queued + running) batch jobs across all
	// tenants (default 256); submissions past it are shed with 429.
	BatchCapacity int
	// BatchWorkers is the batch queue's executor pool size (default 2).
	// Batch jobs bypass the interactive admission queue — this bound is
	// what keeps background batches from starving interactive traffic.
	BatchWorkers int
	// BatchMaxJobs caps the configs one POST /v1/batch may carry
	// (default 512).
	BatchMaxJobs int
	// JobMaxAttempts bounds executions per batch job including the first
	// (default 3); transient failures below it retry with backoff.
	JobMaxAttempts int
	// JobRetryBackoff is the delay before a job's first retry, doubling
	// per attempt (default 250ms).
	JobRetryBackoff time.Duration
	// JobTTL is how long finished batches and their job results stay
	// queryable after completion (default 15m).
	JobTTL time.Duration
	// TenantQPS is the sustained per-tenant job-admission rate on
	// /v1/batch, keyed by the X-Tenant header; 0 disables rate limiting.
	TenantQPS float64
	// TenantBurst is the token-bucket depth behind TenantQPS; 0 derives
	// it from TenantQPS.
	TenantBurst int
	// TenantInflight caps a tenant's live (queued + running) batch jobs;
	// 0 disables the cap.
	TenantInflight int
	// ReadyHighWater is the queued-batch-job depth beyond which /readyz
	// reports 503 so load balancers route new work elsewhere; 0 defaults
	// to 90% of BatchCapacity.
	ReadyHighWater int
	// LedgerSize bounds the run ledger behind /v1/ops — one record per
	// served study, MC run, or batch-job execution, oldest evicted first.
	// 0 means obs.DefaultLedgerCapacity; negative disables the ledger
	// (and the /v1/ops endpoints answer 404).
	LedgerSize int
	// Now overrides the clock for tests; nil uses time.Now.
	Now func() time.Time
}

// Server is the rampd request handler set. Create with New; the zero
// value is not usable.
type Server struct {
	cfg        Config
	registry   *workload.Registry
	cache      *Cache
	stageCache *sim.StageCache
	flights    *flightGroup
	metrics    *Metrics
	obs        *serverObs
	logger     *slog.Logger
	traces     *obs.TraceRing
	schedStats *sched.Counters
	schedRec   *schedRecorder
	jobs       *jobs.Queue
	ledger     *obs.Ledger // nil when disabled by Config.LedgerSize < 0
	admission  chan struct{}
	mux        *http.ServeMux
	now        func() time.Time
	draining   chan struct{} // closed by BeginDrain
	baseCtx    context.Context
	baseCancel context.CancelFunc
	// runStudy indirects the simulation entry point so tests can count
	// and stub invocations.
	runStudy func(ctx context.Context, cfg sim.Config, profiles []workload.Profile,
		techs []scaling.Technology, opts sim.StudyOptions) (*sim.StudyResult, error)
}

// New validates cfg, applies defaults, and returns a ready Server.
func New(cfg Config) (*Server, error) {
	if err := cfg.Sim.Validate(); err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	if cfg.Registry == nil {
		cfg.Registry = workload.DefaultRegistry()
	}
	if cfg.DefaultInstructions <= 0 {
		cfg.DefaultInstructions = cfg.Sim.Instructions
	}
	if cfg.MaxInstructions <= 0 {
		cfg.MaxInstructions = 10 * cfg.DefaultInstructions
	}
	if cfg.DefaultInstructions > cfg.MaxInstructions {
		return nil, fmt.Errorf("server: default instruction budget %d exceeds cap %d",
			cfg.DefaultInstructions, cfg.MaxInstructions)
	}
	if cfg.CacheSize <= 0 {
		cfg.CacheSize = 64
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 4
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	if cfg.StreamHeartbeat <= 0 {
		cfg.StreamHeartbeat = 10 * time.Second
	}
	if cfg.TraceRetain <= 0 {
		cfg.TraceRetain = 8
	}
	if cfg.TraceSpanLimit <= 0 {
		cfg.TraceSpanLimit = 16384
	}
	if cfg.MaxMCSamples <= 0 {
		cfg.MaxMCSamples = 200_000
	}
	if cfg.MaxMCSamples > sim.MaxMCSamples {
		cfg.MaxMCSamples = sim.MaxMCSamples
	}
	if cfg.MaxMCReplicas <= 0 {
		cfg.MaxMCReplicas = 2_000_000
	}
	if cfg.BatchCapacity <= 0 {
		cfg.BatchCapacity = 256
	}
	if cfg.BatchWorkers <= 0 {
		cfg.BatchWorkers = 2
	}
	if cfg.BatchMaxJobs <= 0 {
		cfg.BatchMaxJobs = 512
	}
	if cfg.ReadyHighWater <= 0 {
		cfg.ReadyHighWater = cfg.BatchCapacity * 9 / 10
	}
	logger := cfg.Logger
	if logger == nil {
		logger = obs.NopLogger()
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	so := newServerObs()
	stageCache, err := sim.NewStageCache(sim.StageCacheOptions{
		MaxEntries: cfg.StageCacheEntries,
		Dir:        cfg.CacheDir,
		Observer:   so.storeObserver,
	})
	if err != nil {
		return nil, fmt.Errorf("server: stage cache: %w", err)
	}
	baseCtx, baseCancel := context.WithCancel(context.Background())
	schedStats := sched.NewCounters()
	s := &Server{
		cfg:        cfg,
		registry:   cfg.Registry,
		cache:      NewCache(cfg.CacheSize, cfg.CacheTTL, now),
		stageCache: stageCache,
		flights:    newFlightGroup(),
		metrics:    NewMetrics(),
		obs:        so,
		logger:     logger,
		traces:     obs.NewTraceRing(cfg.TraceRetain),
		schedStats: schedStats,
		schedRec:   &schedRecorder{Counters: schedStats, latency: so.schedLatency, queueWait: so.queueWait},
		admission:  make(chan struct{}, cfg.MaxQueue),
		mux:        http.NewServeMux(),
		now:        now,
		draining:   make(chan struct{}),
		baseCtx:    baseCtx,
		baseCancel: baseCancel,
		runStudy:   sim.RunStudyContext,
	}
	if cfg.LedgerSize >= 0 {
		s.ledger = obs.NewLedger(cfg.LedgerSize)
	}
	s.jobs, err = jobs.New(jobs.Config{
		Capacity:     cfg.BatchCapacity,
		Workers:      cfg.BatchWorkers,
		MaxAttempts:  cfg.JobMaxAttempts,
		RetryBackoff: cfg.JobRetryBackoff,
		ResultTTL:    cfg.JobTTL,
		Quota: jobs.QuotaConfig{
			JobsPerSecond: cfg.TenantQPS,
			Burst:         cfg.TenantBurst,
			MaxInflight:   cfg.TenantInflight,
		},
		Retryable: retryableJobError,
		Now:       now,
	}, s.executeJob)
	if err != nil {
		baseCancel()
		return nil, fmt.Errorf("server: job queue: %w", err)
	}
	so.bindServer(s)
	s.flights.onCoalesce = func() {
		s.metrics.Coalesced.Add(1)
		so.coalesced.Inc()
	}
	s.mux.Handle("/v1/study", s.instrument("/v1/study", s.handleStudy))
	s.mux.Handle("/v1/study/stream", s.instrument("/v1/study/stream", s.handleStudyStream))
	s.mux.Handle("/v1/study/mc", s.instrument("/v1/study/mc", s.handleStudyMC))
	s.mux.Handle("/v1/study/trace", s.instrument("/v1/study/trace", s.handleStudyTrace))
	s.mux.Handle("/v1/mttf", s.instrument("/v1/mttf", s.handleMTTF))
	s.mux.Handle("/v1/profiles", s.instrument("/v1/profiles", s.handleProfiles))
	s.mux.Handle("/v1/mechanisms", s.instrument("/v1/mechanisms", s.handleMechanisms))
	s.mux.Handle("/v1/batch", s.instrument("/v1/batch", s.handleBatch))
	s.mux.Handle("/v1/batch/", s.instrument("/v1/batch/", s.handleBatchSub))
	s.mux.Handle("/v1/ops/runs", s.instrument("/v1/ops/runs", s.handleOpsRuns))
	s.mux.Handle("/v1/ops/runs/", s.instrument("/v1/ops/runs/", s.handleOpsRun))
	s.mux.Handle("/v1/ops/tail", s.instrument("/v1/ops/tail", s.handleOpsTail))
	s.mux.Handle("/healthz", s.instrument("/healthz", s.handleHealthz))
	s.mux.Handle("/readyz", s.instrument("/readyz", s.handleReadyz))
	s.mux.Handle("/metrics", s.instrument("/metrics", s.handleMetrics))
	return s, nil
}

// Handler returns the root HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics exposes the server's counters (read-only use).
func (s *Server) Metrics() *Metrics { return s.metrics }

// SchedStats exposes the shared scheduler counters.
func (s *Server) SchedStats() sched.Stats { return s.schedStats }

// BeginDrain flips /readyz to 503 so load balancers stop routing new
// work while the HTTP server drains in-flight requests. Liveness
// (/healthz) is unaffected: the process is healthy, just not accepting.
// Idempotent.
func (s *Server) BeginDrain() {
	select {
	case <-s.draining:
	default:
		close(s.draining)
	}
}

// Close cancels the base context underlying all in-flight simulations and
// shuts the batch job queue down, waiting for its workers. Call only after
// the HTTP server has finished draining: cancelling early would abort
// simulations that admitted requests are still waiting on.
func (s *Server) Close() {
	s.baseCancel()
	s.jobs.Close()
}

// Jobs exposes the batch job queue (facade and test use).
func (s *Server) Jobs() *jobs.Queue { return s.jobs }

// statusWriter captures the response code for metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the wrapped writer so streaming handlers still see an
// http.Flusher through the instrumentation layer; a no-op when the
// underlying connection cannot flush.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps a handler with request-ID assignment, W3C trace
// propagation, request counting, in-flight gauging, status accounting,
// the latency histograms, and the structured access log.
//
// Every request gets an ID: a sane inbound X-Request-ID is honoured
// (sanitised against log/header injection), anything else gets a fresh
// one. The ID is echoed on the response header, carried in the request
// context for handlers and error envelopes, and stamped on every log line.
//
// Trace propagation mirrors that: a valid inbound traceparent is
// continued (the response and the request context carry a child of it,
// so the server's work is a new span of the caller's trace), anything
// else starts a fresh sampled trace. The trace ID rides the latency
// histogram as an OpenMetrics exemplar, so a scrape links slow buckets
// to concrete traces.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := s.now()
		reqID := obs.SanitizeRequestID(r.Header.Get("X-Request-ID"))
		if reqID == "" {
			reqID = obs.NewRequestID()
		}
		tc, ok := obs.ParseTraceparent(r.Header.Get("traceparent"))
		if ok {
			tc = tc.Child()
		} else {
			tc = obs.NewTraceContext()
		}
		w.Header().Set("X-Request-ID", reqID)
		w.Header().Set("Traceparent", tc.String())
		ctx := obs.WithRequestID(r.Context(), reqID)
		ctx = obs.WithTraceContext(ctx, tc)
		// Tenant parsing is lenient here — a malformed X-Tenant only fails
		// the endpoints that charge quota to it (handleBatch revalidates).
		if tenant, terr := tenantFrom(r); terr == nil {
			ctx = withTenant(ctx, tenant)
		}
		r = r.WithContext(ctx)

		s.metrics.Requests.Add(endpoint, 1)
		s.obs.httpRequests.With(endpoint).Inc()
		s.metrics.InFlightHTTP.Add(1)
		s.obs.inflight.Add(1)
		defer func() {
			s.metrics.InFlightHTTP.Add(-1)
			s.obs.inflight.Add(-1)
		}()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, r)
		dur := s.now().Sub(start)
		s.metrics.Status.Add(strconv.Itoa(sw.status), 1)
		s.obs.httpResponses.With(strconv.Itoa(sw.status)).Inc()
		s.metrics.ObserveLatency(dur)
		s.obs.httpLatency.ObserveExemplar(dur.Seconds(), obs.Label{Name: "trace_id", Value: tc.TraceID})
		s.logger.Info("request",
			"request_id", reqID,
			"trace_id", tc.TraceID,
			"endpoint", endpoint,
			"method", r.Method,
			"status", sw.status,
			"duration_ms", float64(dur)/float64(time.Millisecond),
		)
	})
}

// tenantKey carries the request's tenant (the X-Tenant header, leniently
// defaulted) so run records can attribute work without re-reading
// headers deep in the serving stack.
type tenantKey struct{}

func withTenant(ctx context.Context, tenant string) context.Context {
	return context.WithValue(ctx, tenantKey{}, tenant)
}

func tenantFromCtx(ctx context.Context) string {
	t, _ := ctx.Value(tenantKey{}).(string)
	if t == "" {
		return "default"
	}
	return t
}

// StudyRequest is the wire form of a study query. Zero values mean "the
// default": all benchmarks, all Table 4 technologies, the server's
// instruction budget.
type StudyRequest struct {
	// Apps lists benchmark names from /v1/profiles; empty = all.
	Apps []string `json:"apps"`
	// Techs lists technology names (e.g. "65nm (1.0V)"); empty = all.
	// The 180nm calibration anchor always runs and is always first.
	Techs []string `json:"techs"`
	// Instructions overrides the per-application trace length.
	Instructions int64 `json:"instructions"`
	// Fidelity selects the simulation fidelity mode: "exact" (or empty,
	// the default), "adaptive", or "phase". The mode participates in the
	// request's cache key and every stage key below it, so responses at
	// different fidelities never cross-serve.
	Fidelity string `json:"fidelity,omitempty"`
	// Mechanisms lists the failure mechanisms to evaluate, by registry
	// name (GET /v1/mechanisms enumerates them); empty means the paper's
	// four (em/sm/tc/tddb). The canonicalised list participates in the
	// request's cache key and the reliability-stage key below it — but not
	// the timing/thermal keys, so different selections share thermal
	// artifacts.
	Mechanisms []string `json:"mechanisms,omitempty"`
}

// StudyMeta describes how a response was produced.
type StudyMeta struct {
	// Key is the content-addressed cache key of the request.
	Key string `json:"key"`
	// Cache is "hit" or "miss".
	Cache string `json:"cache"`
	// Coalesced reports whether this request joined another request's
	// in-flight simulation instead of starting its own.
	Coalesced bool `json:"coalesced"`
	// ComputeMS is the simulation time this request actually waited on;
	// ~0 for cache hits.
	ComputeMS float64 `json:"compute_ms"`
}

// StudyResponse is the /v1/study payload.
type StudyResponse struct {
	SchemaVersion int             `json:"schema_version"`
	Meta          StudyMeta       `json:"meta"`
	Study         report.Document `json:"study"`
}

// MTTFResponse is the /v1/mttf payload.
type MTTFResponse struct {
	SchemaVersion int                `json:"schema_version"`
	Meta          StudyMeta          `json:"meta"`
	MTTF          report.MTTFSummary `json:"mttf"`
}

// handleStudy serves the full study document.
func (s *Server) handleStudy(w http.ResponseWriter, r *http.Request) {
	req, err := parseStudyRequest(r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, CodeBadRequest, err)
		return
	}
	res, meta, err := s.study(r.Context(), req)
	if err != nil {
		s.writeStudyError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, StudyResponse{
		SchemaVersion: SchemaVersion, Meta: meta, Study: report.BuildDocument(res)})
}

// handleMTTF serves the compact lifetime summary; it shares the study
// cache and coalescer with /v1/study, so either endpoint warms the other.
func (s *Server) handleMTTF(w http.ResponseWriter, r *http.Request) {
	req, err := parseStudyRequest(r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, CodeBadRequest, err)
		return
	}
	res, meta, err := s.study(r.Context(), req)
	if err != nil {
		s.writeStudyError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, MTTFResponse{
		SchemaVersion: SchemaVersion, Meta: meta, MTTF: report.BuildMTTFSummary(res)})
}

// handleProfiles lists the registered benchmark profiles.
func (s *Server) handleProfiles(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, errors.New("use GET"))
		return
	}
	type profileDoc struct {
		Name         string  `json:"name"`
		Suite        string  `json:"suite"`
		TargetIPC    float64 `json:"target_ipc"`
		TargetPowerW float64 `json:"target_power_w"`
	}
	all := s.registry.All()
	out := struct {
		SchemaVersion int          `json:"schema_version"`
		Profiles      []profileDoc `json:"profiles"`
	}{SchemaVersion: SchemaVersion, Profiles: make([]profileDoc, 0, len(all))}
	for _, p := range all {
		out.Profiles = append(out.Profiles, profileDoc{
			Name:         p.Name,
			Suite:        p.Suite.String(),
			TargetIPC:    p.TargetIPC,
			TargetPowerW: p.TargetPowerW,
		})
	}
	s.writeJSON(w, http.StatusOK, out)
}

// MechanismsResponse is the /v1/mechanisms payload: discovery metadata
// for every registered failure mechanism, sorted by name. (Additive
// endpoint, same schema version.)
type MechanismsResponse struct {
	SchemaVersion int                  `json:"schema_version"`
	Mechanisms    []core.MechanismInfo `json:"mechanisms"`
	// Default lists the canonical names evaluated when a request names no
	// mechanisms — the paper's four.
	Default []string `json:"default"`
}

// handleMechanisms lists the registered failure mechanisms: names,
// descriptions, tunable parameters, evaluation scope, and default-set
// membership — everything a client needs to build a StudyRequest
// mechanism selection.
func (s *Server) handleMechanisms(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, errors.New("use GET"))
		return
	}
	s.writeJSON(w, http.StatusOK, MechanismsResponse{
		SchemaVersion: SchemaVersion,
		Mechanisms:    core.RegisteredMechanisms(),
		Default:       core.DefaultMechanismNames(),
	})
}

// healthStatus is the /healthz and /readyz payload.
type healthStatus struct {
	SchemaVersion int    `json:"schema_version"`
	Status        string `json:"status"`
	// QueueDepth and QueueHighWater report the batch-job backlog /readyz
	// keys off; zero on /healthz.
	QueueDepth     int `json:"queue_depth,omitempty"`
	QueueHighWater int `json:"queue_high_water,omitempty"`
}

// handleHealthz is pure liveness: 200 for as long as the process can
// serve HTTP at all, draining included. Restart decisions key off this;
// routing decisions belong to /readyz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, healthStatus{SchemaVersion: SchemaVersion, Status: "ok"})
}

// handleReadyz is readiness: 503 while draining or while the batch job
// queue is beyond its high-water mark, so load balancers steer new work
// to less-loaded replicas without the process being restarted.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	st := healthStatus{
		SchemaVersion:  SchemaVersion,
		Status:         "ok",
		QueueDepth:     s.jobs.Depth(),
		QueueHighWater: s.cfg.ReadyHighWater,
	}
	select {
	case <-s.draining:
		st.Status = "draining"
	default:
		if st.QueueDepth > st.QueueHighWater {
			st.Status = "backlogged"
		}
	}
	if st.Status != "ok" {
		s.writeJSON(w, http.StatusServiceUnavailable, st)
		return
	}
	s.writeJSON(w, http.StatusOK, st)
}

// handleMetrics serves the metric snapshot: the JSON document by default,
// the Prometheus text exposition with ?format=prometheus.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		s.writeJSON(w, http.StatusOK, s.metricsSnapshot())
	case "prometheus":
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		_ = s.obs.reg.WritePrometheus(w)
	default:
		s.writeError(w, http.StatusBadRequest, CodeBadRequest,
			fmt.Errorf("unknown metrics format %q (use json or prometheus)", format))
	}
}

// handleStudyTrace serves retained study traces as Chrome trace-event JSON
// loadable in Perfetto (ui.perfetto.dev) or chrome://tracing. By default
// the most recent trace is returned; ?key=<study key> selects a specific
// retained study, and ?list=1 returns the retained identities instead.
func (s *Server) handleStudyTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, errors.New("use GET"))
		return
	}
	q := r.URL.Query()
	if q.Get("list") != "" {
		s.writeJSON(w, http.StatusOK, struct {
			SchemaVersion int                `json:"schema_version"`
			Traces        []obs.TraceSummary `json:"traces"`
		}{SchemaVersion, s.traces.List()})
		return
	}
	var entry obs.TraceEntry
	var ok bool
	if key := q.Get("key"); key != "" {
		entry, ok = s.traces.ByKey(key)
	} else {
		entry, ok = s.traces.Latest()
	}
	if !ok {
		s.writeError(w, http.StatusNotFound, CodeBadRequest,
			errors.New("no matching study trace retained; run a study first"))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Study-Key", entry.Key)
	w.WriteHeader(http.StatusOK)
	_ = obs.WriteChromeTrace(w, entry.Spans)
}

// parseStudyRequest accepts POST application/json bodies and GET query
// parameters (?apps=a,b&techs=x,y&instructions=n).
func parseStudyRequest(r *http.Request) (StudyRequest, error) {
	var req StudyRequest
	switch r.Method {
	case http.MethodPost:
		dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 1<<20))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			return req, fmt.Errorf("bad request body: %w", err)
		}
	case http.MethodGet:
		q := r.URL.Query()
		req.Apps = splitList(q.Get("apps"))
		req.Techs = splitList(q.Get("techs"))
		req.Fidelity = strings.TrimSpace(q.Get("fidelity"))
		req.Mechanisms = splitList(q.Get("mechanisms"))
		if v := q.Get("instructions"); v != "" {
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return req, fmt.Errorf("bad instructions %q", v)
			}
			req.Instructions = n
		}
	default:
		return req, errors.New("use GET or POST")
	}
	return req, nil
}

// splitList parses a comma-separated query value into trimmed names.
func splitList(v string) []string {
	if v == "" {
		return nil
	}
	parts := strings.Split(v, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// resolve turns a wire request into concrete study inputs: profiles via
// the registry, technologies via the Table 4 set with the 180nm anchor
// always first, and the instruction budget clamped to the server's cap.
func (s *Server) resolve(req StudyRequest) (sim.Config, []workload.Profile, []scaling.Technology, error) {
	cfg := s.cfg.Sim
	switch {
	case req.Instructions < 0:
		return cfg, nil, nil, fmt.Errorf("instructions must be positive, got %d", req.Instructions)
	case req.Instructions == 0:
		cfg.Instructions = s.cfg.DefaultInstructions
	case req.Instructions > s.cfg.MaxInstructions:
		return cfg, nil, nil, fmt.Errorf("instructions %d exceeds the server cap %d",
			req.Instructions, s.cfg.MaxInstructions)
	default:
		cfg.Instructions = req.Instructions
	}

	// An explicit mode — "exact" included — overrides the server default;
	// an absent one inherits it.
	if req.Fidelity != "" {
		fd, err := sim.ParseFidelityMode(req.Fidelity)
		if err != nil {
			return cfg, nil, nil, err
		}
		cfg.Fidelity = fd
	}

	// Canonicalise the mechanism selection up front: unknown names fail
	// here with 400 before any simulation work, and the canonical list
	// (nil for the default set) is what every key derivation hashes.
	if len(req.Mechanisms) > 0 {
		canon, err := core.CanonicalMechanismNames(req.Mechanisms)
		if err != nil {
			return cfg, nil, nil, err
		}
		cfg.Mechanisms = canon
	}

	profiles, err := s.registry.Resolve(req.Apps)
	if err != nil {
		return cfg, nil, nil, err
	}

	base := scaling.Base()
	techs := []scaling.Technology{base}
	if len(req.Techs) == 0 {
		techs = scaling.Generations()
	} else {
		seen := map[string]bool{base.Name: true}
		for _, name := range req.Techs {
			t, err := scaling.ByName(name)
			if err != nil {
				return cfg, nil, nil, err
			}
			if seen[t.Name] {
				continue
			}
			seen[t.Name] = true
			techs = append(techs, t)
		}
	}
	return cfg, profiles, techs, nil
}

// study returns the result for a request, consulting the cache, then
// coalescing with any identical in-flight computation, then — as the
// flight leader — running the simulation under admission control and the
// compute deadline.
func (s *Server) study(ctx context.Context, req StudyRequest) (*sim.StudyResult, StudyMeta, error) {
	cfg, profiles, techs, err := s.resolve(req)
	if err != nil {
		return nil, StudyMeta{}, &badRequestError{err}
	}
	key, err := sim.StudyKey(cfg, profiles, techs)
	if err != nil {
		return nil, StudyMeta{}, err
	}
	meta := StudyMeta{Key: key, Cache: "hit"}
	served := s.now()
	if v, ok := s.cache.Get(key); ok {
		if s.ledger != nil {
			s.appendRun(s.newRunRecord(ctx, "study", key, cfg, len(profiles), served, obs.ResultHit, nil))
		}
		return v.(*sim.StudyResult), meta, nil
	}

	start := s.now()
	res, coalesced, stats, err := s.studyFlight(ctx, cfg, profiles, techs, key, true, nil)
	if s.ledger != nil {
		rc := obs.ResultMiss
		if coalesced {
			rc = obs.ResultCoalesced
		}
		rec := s.newRunRecord(ctx, "study", key, cfg, len(profiles), served, rc, err)
		if stats != nil {
			stats.Fill(&rec)
		}
		s.appendRun(rec)
	}
	if err != nil {
		return nil, StudyMeta{}, err
	}
	meta.Cache = "miss"
	meta.Coalesced = coalesced
	meta.ComputeMS = float64(s.now().Sub(start)) / float64(time.Millisecond)
	return res, meta, nil
}

// studyFlight coalesces one study computation with any identical
// in-flight one and, as the flight leader, runs the simulation under the
// compute deadline. admit selects whether the leader takes an admission
// slot; callers that already hold one for the life of the call — the MC
// stream does — or that are bounded elsewhere — batch jobs, by their
// worker pool — pass false to avoid a self-deadlock on the queue. onApp,
// when non-nil, receives per-cell completion events if this call leads
// the flight (followers joined mid-run and see none).
//
// When the run ledger is enabled and this call led the flight, the
// returned RunStats aggregates the computation's spans for the caller's
// run record; it is nil for followers and cache hits, whose records
// carry no stage costs because they did no stage work.
func (s *Server) studyFlight(ctx context.Context, cfg sim.Config, profiles []workload.Profile,
	techs []scaling.Technology, key string, admit bool,
	onApp func(sim.AppEvent)) (*sim.StudyResult, bool, *obs.RunStats, error) {
	// The flight runs detached from the request context, so the leader's
	// request identity is captured here for the trace entry, the study
	// log, and re-installed on the flight context so the study span keeps
	// its trace attribution.
	reqID := obs.RequestIDFrom(ctx)
	tc := obs.TraceContextFrom(ctx)
	start := s.now()
	// The leader closure runs on the detached flight goroutine and may
	// still be executing when Do returns early (this caller's ctx
	// cancelled), so the stats handoff must be atomic. RunStats is
	// internally synchronized; a partially-filled read under early
	// return yields whatever costs accrued before the caller gave up.
	var stats atomic.Pointer[obs.RunStats]
	v, err, coalesced := s.flights.Do(ctx, s.baseCtx, key, func(fctx context.Context) (any, error) {
		// Double-check the cache: a flight that completed between our
		// lookup and this leadership election already has the answer.
		if v, ok := s.cache.peek(key); ok {
			return v, nil
		}
		if admit {
			select {
			case s.admission <- struct{}{}:
				defer func() { <-s.admission }()
			default:
				return nil, errOverloaded
			}
		}
		if s.cfg.ComputeTimeout > 0 {
			var cancel context.CancelFunc
			fctx, cancel = context.WithTimeout(fctx, s.cfg.ComputeTimeout)
			defer cancel()
		}
		s.metrics.Studies.Add(1)
		s.obs.studies.Inc()
		s.logger.Info("study start", "request_id", reqID, "key", key)
		collector := obs.NewCollector(s.cfg.TraceSpanLimit)
		sinks := []obs.SpanSink{s.obs.sink, collector}
		if s.ledger != nil {
			st := obs.NewRunStats()
			stats.Store(st)
			sinks = append(sinks, st)
		}
		fctx = obs.WithRequestID(fctx, reqID)
		fctx = obs.WithTraceContext(fctx, tc)
		fctx = obs.WithTracer(fctx, obs.NewTracer(obs.MultiSink(sinks...)))
		res, err := s.runStudy(fctx, cfg, profiles, techs, sim.StudyOptions{
			Parallelism: s.cfg.Parallelism,
			Metrics:     s.schedRec,
			Cache:       s.stageCache,
			OnApp:       onApp,
		})
		if err != nil {
			// Failed runs — deadline exceeded, cancelled, model errors —
			// are never cached, so a transient failure cannot poison
			// later requests.
			s.logger.Warn("study failed", "request_id", reqID, "key", key, "error", err.Error())
			return nil, err
		}
		s.traces.Add(obs.TraceEntry{
			Key: key, RequestID: reqID, CapturedAt: s.now(), Spans: collector.Spans()})
		s.logger.Info("study done", "request_id", reqID, "key", key,
			"compute_ms", float64(s.now().Sub(start))/float64(time.Millisecond))
		s.cache.Put(key, res)
		return res, nil
	})
	if err != nil {
		return nil, coalesced, stats.Load(), err
	}
	return v.(*sim.StudyResult), coalesced, stats.Load(), nil
}

// badRequestError marks client-side input errors for status mapping.
type badRequestError struct{ err error }

func (e *badRequestError) Error() string { return e.err.Error() }
func (e *badRequestError) Unwrap() error { return e.err }

// studyErrorStatus maps a study error to its HTTP status and envelope
// code. Shared by the blocking handlers and the stream's error events.
func (s *Server) studyErrorStatus(err error) (status int, code string, msg error) {
	var bad *badRequestError
	switch {
	case errors.As(err, &bad):
		return http.StatusBadRequest, CodeBadRequest, err
	case errors.Is(err, errOverloaded):
		return http.StatusTooManyRequests, CodeOverloaded, errors.New("server overloaded, retry later")
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, CodeDeadlineExceeded, err
	case errors.Is(err, context.Canceled):
		// The client is gone or the server is shutting down; 503 is the
		// least-wrong answer for anyone still listening.
		return http.StatusServiceUnavailable, CodeUnavailable, err
	default:
		return http.StatusInternalServerError, CodeInternal, err
	}
}

// writeStudyError maps a study error to its HTTP status.
func (s *Server) writeStudyError(w http.ResponseWriter, err error) {
	status, code, msg := s.studyErrorStatus(err)
	if code == CodeOverloaded {
		s.writeRetryAfter(w)
	}
	s.writeError(w, status, code, msg)
}

// retryAfter computes the 429 Retry-After hint from the configured base,
// scaled by how loaded the admission queue and the batch job queue are
// and spread with ±25% jitter so one burst of shed clients does not
// return in lockstep and overload the server again. Always ≥1s.
func (s *Server) retryAfter() time.Duration {
	base := float64(s.cfg.RetryAfter)
	admLoad := float64(len(s.admission)) / float64(cap(s.admission))
	var jobLoad float64
	if st := s.jobs.Stats(); st.Capacity > 0 {
		jobLoad = float64(st.Queued) / float64(st.Capacity)
	}
	d := base * (1 + 2*admLoad + 2*jobLoad)
	d *= 0.75 + 0.5*rand.Float64()
	if d < float64(time.Second) {
		return time.Second
	}
	return time.Duration(d)
}

// writeRetryAfter stamps the queue-aware Retry-After header on a 429 and
// counts the shed. The header value rounds up to whole seconds.
func (s *Server) writeRetryAfter(w http.ResponseWriter) {
	w.Header().Set("Retry-After",
		strconv.Itoa(int((s.retryAfter()+time.Second-1)/time.Second)))
	s.metrics.Shed.Add(1)
	s.obs.shed.Inc()
}

// writeJSON writes an indented JSON response.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError writes the stable error envelope. The request ID is read back
// from the response header instrument() set, so every call site echoes it
// without threading the request through.
func (s *Server) writeError(w http.ResponseWriter, status int, code string, err error) {
	s.writeJSON(w, status, ErrorResponse{
		SchemaVersion: SchemaVersion,
		RequestID:     w.Header().Get("X-Request-ID"),
		Error:         ErrorBody{Code: code, Message: err.Error()},
	})
}
