package server

import (
	"runtime"
	"time"

	"github.com/ramp-sim/ramp/internal/obs"
	"github.com/ramp-sim/ramp/internal/sched"
	"github.com/ramp-sim/ramp/internal/store"
)

// serverObs is the server's obs.Registry instrument set: everything
// /metrics?format=prometheus exposes. Push-style instruments (counters,
// histograms) are updated on the hot paths; pre-existing stat sources
// (result cache, scheduler counters, stage cache) are bridged at scrape
// time so their state is never double-counted.
type serverObs struct {
	reg *obs.Registry

	// HTTP surface.
	httpRequests  *obs.CounterVec // ramp_http_requests_total{endpoint}
	httpResponses *obs.CounterVec // ramp_http_responses_total{code}
	httpLatency   *obs.Histogram  // ramp_http_request_duration_seconds
	inflight      *obs.Gauge      // ramp_http_inflight_requests
	streamEvents  *obs.CounterVec // ramp_stream_events_total{event}

	// Study admission and coalescing.
	coalesced *obs.Counter // ramp_coalesced_requests_total
	shed      *obs.Counter // ramp_shed_requests_total
	studies   *obs.Counter // ramp_studies_started_total
	streams   *obs.Counter // ramp_streams_started_total

	// Monte Carlo studies.
	mcStudies  *obs.Counter // ramp_mc_studies_total
	mcReplicas *obs.Counter // ramp_mc_replicas_total

	// Batch job queue.
	batches    *obs.Counter      // ramp_batches_submitted_total
	jobRuns    *obs.CounterVec   // ramp_job_runs_total{kind,outcome}
	jobLatency *obs.HistogramVec // ramp_job_duration_seconds{kind}

	// Pipeline-stage latency (timing|thermal|fit), fed by the span sink.
	stageLatency *obs.HistogramVec // ramp_stage_duration_seconds{stage}
	// Scheduler-task latency, fed by the sched.StageObserver hook.
	schedLatency *obs.HistogramVec // ramp_sched_task_duration_seconds{stage}
	// Scheduler ready-queue wait, fed by the sched.QueueObserver hook.
	queueWait *obs.HistogramVec // ramp_sched_queue_wait_seconds{stage}
	// Stage-cache operations, fed by the store observer.
	cacheOps *obs.CounterVec // ramp_stage_cache_ops_total{stage,op,outcome}

	// sink bridges completed pipeline-stage spans into stageLatency; it is
	// part of every study's tracer fan-out.
	sink *obs.MetricsSink
	// jobSink is the batch executor's span sink: per-job "jobs.run" spans
	// land in jobLatency, and any pipeline-stage spans emitted under the
	// job's context still reach the shared stage histogram via sink.
	jobSink obs.SpanSink
}

// spanJobRun names the span wrapping one batch-job execution.
const spanJobRun = "jobs.run"

// jobSpanSink observes completed jobs.run spans into the per-kind job
// latency histogram.
type jobSpanSink struct {
	hist *obs.HistogramVec
}

func (s *jobSpanSink) SpanEnded(sp *obs.Span) {
	if sp.Name != spanJobRun {
		return
	}
	kind := "unknown"
	for _, a := range sp.Attrs() {
		if a.Key == "kind" {
			kind = a.Value
		}
	}
	s.hist.With(kind).Observe(sp.End.Sub(sp.Start).Seconds())
}

// newServerObs registers the push-style instruments on a fresh registry.
// Scrape-time bridges over the server's stat sources are attached later by
// bindServer, once those sources exist.
func newServerObs() *serverObs {
	reg := obs.NewRegistry()
	o := &serverObs{
		reg:           reg,
		httpRequests:  reg.CounterVec("ramp_http_requests_total", "HTTP requests handled, by endpoint.", "endpoint"),
		httpResponses: reg.CounterVec("ramp_http_responses_total", "HTTP responses sent, by status code.", "code"),
		httpLatency:   reg.Histogram("ramp_http_request_duration_seconds", "HTTP request latency in seconds.", nil),
		inflight:      reg.Gauge("ramp_http_inflight_requests", "HTTP requests currently executing."),
		streamEvents:  reg.CounterVec("ramp_stream_events_total", "NDJSON stream events sent, by event type.", "event"),
		coalesced:     reg.Counter("ramp_coalesced_requests_total", "Requests that joined an identical in-flight study."),
		shed:          reg.Counter("ramp_shed_requests_total", "Requests shed with 429 by the admission queue."),
		studies:       reg.Counter("ramp_studies_started_total", "Studies started on the scheduler pool."),
		streams:       reg.Counter("ramp_streams_started_total", "NDJSON study streams that began streaming."),
		mcStudies:     reg.Counter("ramp_mc_studies_total", "Monte Carlo study streams that began streaming."),
		mcReplicas:    reg.Counter("ramp_mc_replicas_total", "Monte Carlo lifetime replicas drawn by completed studies."),
		batches:       reg.Counter("ramp_batches_submitted_total", "Batch submissions accepted by POST /v1/batch."),
		jobRuns: reg.CounterVec("ramp_job_runs_total",
			"Batch job executions finished, by kind and outcome.", "kind", "outcome"),
		jobLatency: reg.HistogramVec("ramp_job_duration_seconds",
			"Batch job execution latency in seconds, by kind.", nil, "kind"),
		stageLatency: reg.HistogramVec("ramp_stage_duration_seconds",
			"Simulation pipeline stage latency in seconds, by stage (timing|thermal|fit).", nil, "stage"),
		schedLatency: reg.HistogramVec("ramp_sched_task_duration_seconds",
			"Scheduler task latency in seconds, by task stage.", nil, "stage"),
		queueWait: reg.HistogramVec("ramp_sched_queue_wait_seconds",
			"Time scheduler tasks spent ready but waiting for a worker, by task stage.", nil, "stage"),
		cacheOps: reg.CounterVec("ramp_stage_cache_ops_total",
			"Stage-cache operations, by stage, operation, and outcome.", "stage", "op", "outcome"),
	}
	o.sink = obs.NewMetricsSink(o.stageLatency)
	o.jobSink = obs.MultiSink(&jobSpanSink{hist: o.jobLatency}, o.sink)
	return o
}

// storeObserver adapts the stage cache's store events onto the cacheOps
// counter; installed via sim.StageCacheOptions.Observer.
func (o *serverObs) storeObserver(ev store.Event) {
	o.cacheOps.With(ev.Store, ev.Op, ev.Outcome).Inc()
}

// bindServer attaches the scrape-time bridges over the server's live stat
// sources. Each bridge reads one consistent per-source snapshot at
// exposition; nothing is sampled into intermediate state.
func (o *serverObs) bindServer(s *Server) {
	reg := o.reg
	reg.GaugeFunc("ramp_sched_queue_depth", "Scheduler tasks ready and waiting for a worker.", nil,
		func() float64 { return float64(s.schedStats.QueueDepth()) })
	reg.GaugeFunc("ramp_sched_inflight_tasks", "Scheduler tasks currently executing.", nil,
		func() float64 { return float64(s.schedStats.InFlight()) })
	reg.CounterFunc("ramp_sched_tasks_completed_total", "Scheduler tasks finished without error.", nil,
		func() float64 { return float64(s.schedStats.Completed()) })
	reg.CounterFunc("ramp_sched_tasks_failed_total", "Scheduler tasks finished with an error.", nil,
		func() float64 { return float64(s.schedStats.Failed()) })

	reg.GaugeFunc("ramp_result_cache_entries", "Resident whole-study results.", nil,
		func() float64 { return float64(s.cache.Stats().Entries) })
	reg.CounterFunc("ramp_result_cache_hits_total", "Whole-study cache hits.", nil,
		func() float64 { return float64(s.cache.Stats().Hits) })
	reg.CounterFunc("ramp_result_cache_misses_total", "Whole-study cache misses.", nil,
		func() float64 { return float64(s.cache.Stats().Misses) })

	for _, stage := range []string{"timing", "thermal", "fit"} {
		stage := stage
		reg.GaugeFunc("ramp_stage_cache_entries", "Resident stage-cache artifacts, by stage.",
			[]obs.Label{{Name: "stage", Value: stage}},
			func() float64 {
				ss := s.stageCache.Stats()
				switch stage {
				case "timing":
					return float64(ss.Timing.Entries)
				case "thermal":
					return float64(ss.Thermal.Entries)
				default:
					return float64(ss.FIT.Entries)
				}
			})
	}

	reg.GaugeFunc("ramp_study_traces_retained", "Study traces retained for /v1/study/trace.", nil,
		func() float64 { return float64(s.traces.Len()) })

	// Go runtime health: cheap enough to read at scrape time, invaluable
	// when a leak or GC stall is the thing being diagnosed.
	reg.GaugeFunc("ramp_go_goroutines", "Goroutines currently live in the process.", nil,
		func() float64 { return float64(runtime.NumGoroutine()) })
	reg.GaugeFunc("ramp_go_heap_bytes", "Bytes of allocated heap objects (runtime.MemStats.HeapAlloc).", nil,
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.HeapAlloc)
		})
	reg.CounterFunc("ramp_go_gc_pause_seconds_total", "Cumulative stop-the-world GC pause time.", nil,
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.PauseTotalNs) / 1e9
		})

	if s.ledger != nil {
		reg.CounterFunc("ramp_runs_recorded_total", "Run records appended to the cost ledger.", nil,
			func() float64 { return float64(s.ledger.Stats().Appended) })
		reg.GaugeFunc("ramp_ledger_retained_runs", "Run records currently retained in the ledger ring.", nil,
			func() float64 { return float64(s.ledger.Stats().Retained) })
		reg.CounterFunc("ramp_ledger_dropped_events_total", "Ledger tail events dropped on slow subscribers.", nil,
			func() float64 { return float64(s.ledger.Stats().Dropped) })
	}

	reg.GaugeFunc("ramp_admission_queue_depth", "Interactive admission slots currently held.", nil,
		func() float64 { return float64(len(s.admission)) })
	reg.GaugeFunc("ramp_jobs_queued", "Batch jobs admitted and waiting for a worker.", nil,
		func() float64 { return float64(s.jobs.Stats().Queued) })
	reg.GaugeFunc("ramp_jobs_running", "Batch jobs currently executing.", nil,
		func() float64 { return float64(s.jobs.Stats().Running) })
	reg.GaugeFunc("ramp_jobs_done", "Batch jobs finished successfully since start.", nil,
		func() float64 { return float64(s.jobs.Stats().Done) })
	reg.GaugeFunc("ramp_jobs_failed", "Batch jobs failed permanently since start.", nil,
		func() float64 { return float64(s.jobs.Stats().Failed) })
}

// schedRecorder is the server's sched.Recorder: the shared atomic counters
// plus the per-stage task-latency histogram via the optional
// sched.StageObserver extension.
type schedRecorder struct {
	*sched.Counters
	latency   *obs.HistogramVec
	queueWait *obs.HistogramVec
}

// TaskLatency implements sched.StageObserver.
func (r *schedRecorder) TaskLatency(stage string, d time.Duration, err error) {
	r.latency.With(stage).Observe(d.Seconds())
}

// TaskQueueWait implements sched.QueueObserver.
func (r *schedRecorder) TaskQueueWait(stage string, d time.Duration) {
	r.queueWait.With(stage).Observe(d.Seconds())
}

var (
	_ sched.StageObserver = (*schedRecorder)(nil)
	_ sched.QueueObserver = (*schedRecorder)(nil)
)
