package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"github.com/ramp-sim/ramp/internal/jobs"
	"github.com/ramp-sim/ramp/internal/obs"
	"github.com/ramp-sim/ramp/internal/report"
	"github.com/ramp-sim/ramp/internal/sim"
)

// Batch study API: POST /v1/batch submits up to Config.BatchMaxJobs study
// and Monte Carlo configs in one request and returns 202 with a batch ID;
// the work then drains through the internal/jobs queue asynchronously —
// degrading to queueing under load where the interactive endpoints shed
// 429s. Each config is content-addressed (sim.StudyKey / sim.MCStudyKey)
// and deduplicated at three levels: within the batch and against live
// jobs (the queue's dedup index), against identical in-flight interactive
// requests (the singleflight group), and against the result cache.
//
// Endpoints:
//
//	POST   /v1/batch                      submit; X-Tenant selects the quota bucket
//	GET    /v1/batch/{id}                 batch status with per-job state/percent
//	GET    /v1/batch/{id}/stream          NDJSON job-transition events + heartbeats
//	DELETE /v1/batch/{id}                 cancel every non-terminal job
//	GET    /v1/batch/{id}/jobs/{job}      finished job's full result document
//	DELETE /v1/batch/{id}/jobs/{job}      cancel one job
//
// Completed jobs are retained for Config.JobTTL after the batch finishes;
// their results also warm the shared result cache, so a follow-up
// /v1/study with the same config is a cache hit.

// BatchJobRequest is one config inside a batch submission: a study or MC
// request plus the kind discriminator.
type BatchJobRequest struct {
	// Kind is "study" (default) or "mc".
	Kind string `json:"kind"`
	MCStudyRequest
}

// BatchRequest is the wire form of POST /v1/batch.
type BatchRequest struct {
	// Jobs lists the configs; at most Config.BatchMaxJobs per request.
	Jobs []BatchJobRequest `json:"jobs"`
}

// BatchSubmitResponse is the 202 payload of POST /v1/batch.
type BatchSubmitResponse struct {
	SchemaVersion int    `json:"schema_version"`
	RequestID     string `json:"request_id,omitempty"`
	BatchID       string `json:"batch_id"`
	// JobIDs maps each submitted config position to its job; duplicate
	// configs repeat the deduplicated job's ID.
	JobIDs []string `json:"job_ids"`
	// UniqueJobs counts distinct jobs; Deduped counts configs that
	// reused another config's job (within this batch or a live one).
	UniqueJobs int `json:"unique_jobs"`
	Deduped    int `json:"deduped"`
}

// BatchStatusResponse is the GET /v1/batch/{id} payload (also returned by
// the DELETE cancellations).
type BatchStatusResponse struct {
	SchemaVersion int              `json:"schema_version"`
	Batch         jobs.BatchStatus `json:"batch"`
}

// Batch stream events, discriminated by "event": meta (once, first), job
// (one per observed job state, then one per transition), heartbeat, batch
// (once, last, when every job is terminal).
type batchMetaEvent struct {
	SchemaVersion int    `json:"schema_version"`
	Event         string `json:"event"` // "meta"
	RequestID     string `json:"request_id,omitempty"`
	BatchID       string `json:"batch_id"`
	JobsTotal     int    `json:"jobs_total"` // unique jobs
}

type batchJobEvent struct {
	Event string        `json:"event"` // "job"
	From  jobs.State    `json:"from,omitempty"`
	To    jobs.State    `json:"to,omitempty"`
	Job   jobs.Snapshot `json:"job"`
}

type batchDoneEvent struct {
	Event string           `json:"event"` // "batch"
	Batch jobs.BatchStatus `json:"batch"`
}

// batchPayload is the executor input carried by each job.
type batchPayload struct {
	item sim.BatchItem
	// studyKey is the underlying deterministic study key (equal to the
	// job key for study jobs; the seed-independent base for MC jobs).
	studyKey string
}

// resolveBatchItem turns one wire config into a planned sim.BatchItem.
func (s *Server) resolveBatchItem(req BatchJobRequest) (sim.BatchItem, error) {
	kind := req.Kind
	if kind == "" {
		kind = sim.JobStudy
	}
	switch kind {
	case sim.JobStudy:
		if req.Samples != 0 || req.Model != "" || len(req.Percentiles) > 0 ||
			req.CILevel != 0 || req.Seed != 0 || req.BatchSize != 0 {
			return sim.BatchItem{}, errors.New(`kind "study" does not accept Monte Carlo fields; use kind "mc"`)
		}
		cfg, profiles, techs, err := s.resolve(req.StudyRequest)
		if err != nil {
			return sim.BatchItem{}, err
		}
		return sim.BatchItem{Kind: sim.JobStudy, Config: cfg, Profiles: profiles, Techs: techs}, nil
	case sim.JobMC:
		cfg, profiles, techs, mcfg, err := s.resolveMC(req.MCStudyRequest)
		if err != nil {
			return sim.BatchItem{}, err
		}
		return sim.BatchItem{Kind: sim.JobMC, Config: cfg, Profiles: profiles, Techs: techs, MC: mcfg}, nil
	default:
		return sim.BatchItem{}, fmt.Errorf("unknown job kind %q (use study or mc)", kind)
	}
}

// tenantFrom extracts and validates the quota bucket from the X-Tenant
// header; absent means "default".
func tenantFrom(r *http.Request) (string, error) {
	t := r.Header.Get("X-Tenant")
	if t == "" {
		return "default", nil
	}
	if len(t) > 64 {
		return "", errors.New("X-Tenant longer than 64 bytes")
	}
	for _, c := range t {
		if !(c == '-' || c == '_' || c == '.' ||
			(c >= '0' && c <= '9') || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')) {
			return "", fmt.Errorf("X-Tenant %q contains invalid characters", t)
		}
	}
	return t, nil
}

// handleBatch routes /v1/batch: POST submits a batch.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, errors.New("use POST"))
		return
	}
	tenant, err := tenantFrom(r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, CodeBadRequest, err)
		return
	}
	var req BatchRequest
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 4<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, CodeBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if len(req.Jobs) == 0 {
		s.writeError(w, http.StatusBadRequest, CodeBadRequest, errors.New("empty batch: provide jobs[]"))
		return
	}
	if len(req.Jobs) > s.cfg.BatchMaxJobs {
		s.writeError(w, http.StatusBadRequest, CodeBadRequest,
			fmt.Errorf("batch of %d jobs exceeds the per-request cap %d", len(req.Jobs), s.cfg.BatchMaxJobs))
		return
	}

	items := make([]sim.BatchItem, len(req.Jobs))
	for i, jr := range req.Jobs {
		item, err := s.resolveBatchItem(jr)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, CodeBadRequest, fmt.Errorf("jobs[%d]: %w", i, err))
			return
		}
		items[i] = item
	}
	plan, err := sim.PlanBatch(items)
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, CodeInternal, err)
		return
	}
	// Stamp each job with the submitting request's identity; the executor
	// restores it so job spans and run records chain back to this request.
	origin := jobs.Origin{RequestID: obs.RequestIDFrom(r.Context())}
	if tc := obs.TraceContextFrom(r.Context()); tc.Valid() {
		origin.Traceparent = tc.String()
	}
	specs := make([]jobs.Spec, len(items))
	for i, item := range items {
		studyKey := plan.Keys[i]
		if item.Kind == sim.JobMC {
			if studyKey, err = sim.StudyKey(item.Config, item.Profiles, item.Techs); err != nil {
				s.writeError(w, http.StatusInternalServerError, CodeInternal, err)
				return
			}
		}
		specs[i] = jobs.Spec{
			Key:     plan.Keys[i],
			Kind:    jobs.Kind(item.Kind),
			Origin:  origin,
			Payload: batchPayload{item: item, studyKey: studyKey},
		}
	}

	status, err := s.jobs.Submit(tenant, specs)
	if err != nil {
		var quota *jobs.QuotaError
		switch {
		case errors.Is(err, jobs.ErrQueueFull), errors.As(err, &quota):
			s.writeRetryAfter(w)
			s.writeError(w, http.StatusTooManyRequests, CodeOverloaded, err)
		case errors.Is(err, jobs.ErrClosed):
			s.writeError(w, http.StatusServiceUnavailable, CodeUnavailable, err)
		default:
			s.writeError(w, http.StatusInternalServerError, CodeInternal, err)
		}
		return
	}
	s.metrics.Batches.Add(1)
	s.obs.batches.Inc()
	s.logger.Info("batch submitted",
		"request_id", obs.RequestIDFrom(r.Context()),
		"batch_id", status.ID, "tenant", tenant,
		"jobs", len(req.Jobs), "unique", len(status.Jobs))
	s.writeJSON(w, http.StatusAccepted, BatchSubmitResponse{
		SchemaVersion: SchemaVersion,
		RequestID:     obs.RequestIDFrom(r.Context()),
		BatchID:       status.ID,
		JobIDs:        status.JobIDs,
		UniqueJobs:    len(status.Jobs),
		Deduped:       len(status.JobIDs) - len(status.Jobs),
	})
}

// handleBatchSub routes /v1/batch/{id}[...]: status, stream, job results,
// and cancellation.
func (s *Server) handleBatchSub(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/batch/")
	parts := strings.Split(rest, "/")
	switch {
	case len(parts) == 1 && parts[0] != "":
		s.handleBatchOne(w, r, parts[0])
	case len(parts) == 2 && parts[1] == "stream":
		s.handleBatchStream(w, r, parts[0])
	case len(parts) == 3 && parts[1] == "jobs" && parts[2] != "":
		s.handleBatchJob(w, r, parts[0], parts[2])
	default:
		s.writeError(w, http.StatusNotFound, CodeBadRequest,
			fmt.Errorf("unknown batch path %q", r.URL.Path))
	}
}

// handleBatchOne serves GET (status) and DELETE (cancel) for one batch.
func (s *Server) handleBatchOne(w http.ResponseWriter, r *http.Request, batchID string) {
	switch r.Method {
	case http.MethodGet:
	case http.MethodDelete:
		if err := s.jobs.CancelBatch(batchID); err != nil {
			s.writeError(w, http.StatusNotFound, CodeBadRequest,
				fmt.Errorf("unknown batch %q", batchID))
			return
		}
	default:
		s.writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, errors.New("use GET or DELETE"))
		return
	}
	status, ok := s.jobs.Batch(batchID)
	if !ok {
		s.writeError(w, http.StatusNotFound, CodeBadRequest,
			fmt.Errorf("unknown batch %q (results expire after %s)", batchID, s.cfg.JobTTL))
		return
	}
	s.writeJSON(w, http.StatusOK, BatchStatusResponse{SchemaVersion: SchemaVersion, Batch: status})
}

// handleBatchJob serves GET (result document) and DELETE (cancel) for one
// job of a batch.
func (s *Server) handleBatchJob(w http.ResponseWriter, r *http.Request, batchID, jobID string) {
	j, ok := s.jobs.Job(batchID, jobID)
	if !ok {
		s.writeError(w, http.StatusNotFound, CodeBadRequest,
			fmt.Errorf("unknown job %q in batch %q", jobID, batchID))
		return
	}
	switch r.Method {
	case http.MethodDelete:
		_ = s.jobs.Cancel(jobID)
		s.writeJSON(w, http.StatusOK, struct {
			SchemaVersion int           `json:"schema_version"`
			Job           jobs.Snapshot `json:"job"`
		}{SchemaVersion, j.Snapshot(s.now())})
		return
	case http.MethodGet:
	default:
		s.writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, errors.New("use GET or DELETE"))
		return
	}

	switch j.State() {
	case jobs.StateDone:
	case jobs.StateFailed, jobs.StateCancelled:
		err := j.Err()
		if err == nil {
			err = errors.New("job did not complete")
		}
		s.writeStudyError(w, err)
		return
	default:
		// Not finished yet: point the client back at the status endpoint.
		s.writeError(w, http.StatusConflict, CodeNotReady,
			fmt.Errorf("job %s is %s; poll /v1/batch/%s", jobID, j.State(), batchID))
		return
	}

	res, _ := j.Result()
	meta := StudyMeta{Key: j.Key, Cache: "job"}
	switch v := res.(type) {
	case *sim.StudyResult:
		s.writeJSON(w, http.StatusOK, StudyResponse{
			SchemaVersion: SchemaVersion, Meta: meta, Study: report.BuildDocument(v)})
	case *sim.MCResult:
		s.writeJSON(w, http.StatusOK, struct {
			SchemaVersion int          `json:"schema_version"`
			Meta          StudyMeta    `json:"meta"`
			MC            sim.MCResult `json:"mc"`
		}{SchemaVersion, meta, *v})
	default:
		s.writeError(w, http.StatusInternalServerError, CodeInternal,
			fmt.Errorf("job %s holds an unexpected result type", jobID))
	}
}

// handleBatchStream serves a batch's progress as NDJSON: a meta event,
// the current state of every job, then live transition events and idle
// heartbeats until every job is terminal, closing with a batch event.
// Disconnecting only stops the stream — queued and running jobs are
// unaffected, and the batch remains pollable.
func (s *Server) handleBatchStream(w http.ResponseWriter, r *http.Request, batchID string) {
	if r.Method != http.MethodGet {
		s.writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, errors.New("use GET"))
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		s.writeError(w, http.StatusInternalServerError, CodeInternal,
			errors.New("streaming unsupported by connection"))
		return
	}
	events, stop, ok := s.jobs.Subscribe(batchID)
	if !ok {
		s.writeError(w, http.StatusNotFound, CodeBadRequest,
			fmt.Errorf("unknown batch %q", batchID))
		return
	}
	defer stop()
	status, ok := s.jobs.Batch(batchID)
	if !ok {
		s.writeError(w, http.StatusNotFound, CodeBadRequest,
			fmt.Errorf("unknown batch %q", batchID))
		return
	}
	s.metrics.Streams.Add(1)
	s.obs.streams.Inc()

	sw := s.newStreamWriter(w, flusher)
	sw.send(batchMetaEvent{SchemaVersion: SchemaVersion, Event: "meta",
		RequestID: obs.RequestIDFrom(r.Context()), BatchID: batchID, JobsTotal: len(status.Jobs)})
	for _, snap := range status.Jobs {
		sw.send(batchJobEvent{Event: "job", To: snap.State, Job: snap})
	}
	if status.Done {
		sw.send(batchDoneEvent{Event: "batch", Batch: status})
		return
	}

	heartbeat := time.NewTicker(s.cfg.StreamHeartbeat)
	defer heartbeat.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case ev := <-events:
			sw.send(batchJobEvent{Event: "job", From: ev.From, To: ev.To, Job: ev.Job})
			if ev.To.Terminal() {
				if st, ok := s.jobs.Batch(batchID); ok && st.Done {
					sw.send(batchDoneEvent{Event: "batch", Batch: st})
					return
				}
			}
		case <-heartbeat.C:
			// The heartbeat doubles as a liveness re-check: subscriber
			// channels drop events under pressure, so poll the authoritative
			// state and finish if everything is terminal.
			if st, ok := s.jobs.Batch(batchID); ok && st.Done {
				sw.send(batchDoneEvent{Event: "batch", Batch: st})
				return
			}
			sw.send(streamHeartbeatEvent{"heartbeat"})
		}
	}
}

// executeJob is the queue's Executor: it routes a job's payload through
// the same singleflight group, result cache, and stage cache the
// interactive endpoints use, so batch and interactive traffic deduplicate
// against each other. Batch jobs bypass the interactive admission queue —
// their concurrency is bounded by the queue's worker pool instead, which
// is what lets overload degrade to queueing rather than 429s.
func (s *Server) executeJob(ctx context.Context, j *jobs.Job) (any, error) {
	payload, ok := j.Payload.(batchPayload)
	if !ok {
		return nil, &badRequestError{fmt.Errorf("job %s carries no batch payload", j.ID)}
	}
	start := s.now()
	// Restore the submitting request's identity so executor spans, logs,
	// and the run record stay attributable end to end across the queue.
	if j.Origin.RequestID != "" {
		ctx = obs.WithRequestID(ctx, j.Origin.RequestID)
	}
	if tc, ok := obs.ParseTraceparent(j.Origin.Traceparent); ok {
		ctx = obs.WithTraceContext(ctx, tc)
	}
	sinks := []obs.SpanSink{s.obs.jobSink}
	var stats *obs.RunStats
	if s.ledger != nil {
		stats = obs.NewRunStats()
		sinks = append(sinks, stats)
	}
	ctx, span := obs.StartSpan(obs.WithTracer(ctx, obs.NewTracer(obs.MultiSink(sinks...))), spanJobRun)
	span.SetAttr("job", j.ID)
	span.SetAttr("kind", string(j.Kind))
	span.SetAttr("key", j.Key)
	traceID := obs.TraceContextFrom(ctx).TraceID
	if j.Origin.RequestID != "" {
		span.SetAttr("request_id", j.Origin.RequestID)
	}
	if traceID != "" {
		span.SetAttr("trace_id", traceID)
	}
	defer span.Finish()
	s.logger.Info("job start", "job_id", j.ID, "kind", j.Kind, "key", j.Key, "tenant", j.Tenant,
		"request_id", j.Origin.RequestID, "trace_id", traceID)

	res, resultCache, flightStats, err := s.runBatchItem(ctx, payload)
	outcome := "ok"
	if err != nil {
		outcome = "error"
		s.logger.Warn("job failed", "job_id", j.ID, "key", j.Key,
			"request_id", j.Origin.RequestID, "error", err.Error())
	} else {
		s.logger.Info("job done", "job_id", j.ID, "key", j.Key,
			"request_id", j.Origin.RequestID,
			"compute_ms", float64(s.now().Sub(start))/float64(time.Millisecond))
	}
	s.obs.jobRuns.With(string(j.Kind), outcome).Inc()
	if s.ledger != nil {
		snap := j.Snapshot(s.now())
		rec := s.newRunRecord(ctx, "job."+string(j.Kind), j.Key, payload.item.Config,
			len(payload.item.Profiles), start, resultCache, err)
		rec.Tenant = j.Tenant
		rec.JobID = j.ID
		rec.Attempt = snap.Attempts
		rec.QueueMS = snap.QueuedMS
		if flightStats != nil {
			flightStats.Fill(&rec)
		}
		stats.Fill(&rec)
		s.appendRun(rec)
	}
	return res, err
}

// runBatchItem executes one planned item against the caches and the
// simulator. Alongside the result it reports ledger provenance: how the
// result cache answered (hit / miss / coalesced) and the deterministic
// study flight's stage stats (nil on cache hits and when the ledger is
// off).
func (s *Server) runBatchItem(ctx context.Context, p batchPayload) (any, string, *obs.RunStats, error) {
	item := p.item
	switch item.Kind {
	case sim.JobStudy:
		key := p.studyKey
		if v, ok := s.cache.Get(key); ok {
			return v.(*sim.StudyResult), obs.ResultHit, nil, nil
		}
		job := jobs.JobFrom(ctx)
		res, coalesced, fstats, err := s.studyFlight(ctx, item.Config, item.Profiles, item.Techs, key, false,
			func(ev sim.AppEvent) {
				if job != nil && ev.CellsTotal > 0 {
					job.SetPercent(100 * float64(ev.CellsDone) / float64(ev.CellsTotal))
				}
			})
		rc := obs.ResultMiss
		if coalesced {
			rc = obs.ResultCoalesced
		}
		return res, rc, fstats, err
	case sim.JobMC:
		mcKey, err := sim.MCStudyKey(item.Config, item.MC, item.Profiles, item.Techs)
		if err != nil {
			return nil, "", nil, err
		}
		if v, ok := s.cache.Get(mcKey); ok {
			return v.(*sim.MCResult), obs.ResultHit, nil, nil
		}
		job := jobs.JobFrom(ctx)
		base, _, fstats, err := s.studyFlight(ctx, item.Config, item.Profiles, item.Techs, p.studyKey, false,
			func(ev sim.AppEvent) {
				// The deterministic study is the first half of an MC job.
				if job != nil && ev.CellsTotal > 0 {
					job.SetPercent(50 * float64(ev.CellsDone) / float64(ev.CellsTotal))
				}
			})
		if err != nil {
			return nil, obs.ResultMiss, fstats, err
		}
		res, err := sim.MonteCarloStudy(ctx, base, item.MC, sim.MCOptions{
			Parallelism: s.cfg.Parallelism,
			Metrics:     s.schedRec,
			OnEvent: func(ev sim.MCEvent) {
				if job != nil && ev.Final && ev.CellsTotal > 0 {
					job.SetPercent(50 + 50*float64(ev.CellsDone)/float64(ev.CellsTotal))
				}
			},
		})
		if err != nil {
			return nil, obs.ResultMiss, fstats, err
		}
		s.cache.Put(mcKey, res)
		s.metrics.MCReplicas.Add(int64(res.TotalReplicas))
		s.obs.mcReplicas.Add(uint64(res.TotalReplicas))
		return res, obs.ResultMiss, fstats, nil
	default:
		return nil, "", nil, &badRequestError{fmt.Errorf("unknown job kind %q", item.Kind)}
	}
}

// retryableJobError classifies executor failures for the queue: client
// errors and cancellations are permanent, everything else — deadline
// overruns, transient stage failures — earns a retry with backoff.
func retryableJobError(err error) bool {
	var bad *badRequestError
	if errors.As(err, &bad) {
		return false
	}
	if errors.Is(err, context.Canceled) {
		return false
	}
	return true
}
