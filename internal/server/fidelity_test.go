package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/ramp-sim/ramp/internal/scaling"
	"github.com/ramp-sim/ramp/internal/sim"
	"github.com/ramp-sim/ramp/internal/workload"
)

// post issues a JSON POST against the handler and decodes the envelope.
func post(t *testing.T, s *Server, target, body string) (*httptest.ResponseRecorder, map[string]json.RawMessage) {
	t.Helper()
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, target, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	s.Handler().ServeHTTP(rec, req)
	var out map[string]json.RawMessage
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("%s: bad JSON response %q: %v", target, rec.Body.String(), err)
	}
	return rec, out
}

// TestStudyFidelityParameter pins the fidelity knob end to end: the wire
// parameter reaches the simulation config, "exact" and an absent mode are
// the same request (same cache key), and every distinct mode gets its own
// key so responses never cross-serve between fidelities.
func TestStudyFidelityParameter(t *testing.T) {
	s := newTestServer(t, nil)
	var lastFidelity *sim.Fidelity
	s.runStudy = func(ctx context.Context, cfg sim.Config, profiles []workload.Profile,
		techs []scaling.Technology, opts sim.StudyOptions) (*sim.StudyResult, error) {
		lastFidelity = cfg.Fidelity
		return stubResult(cfg, techs), nil
	}

	keys := map[string]string{}
	for _, mode := range []string{"", "exact", "adaptive", "phase"} {
		target := "/v1/study?apps=ammp&techs=130nm"
		if mode != "" {
			target += "&fidelity=" + mode
		}
		rec, body := get(t, s, target)
		if rec.Code != http.StatusOK {
			t.Fatalf("fidelity=%q: status %d: %s", mode, rec.Code, rec.Body.String())
		}
		keys[mode] = meta(t, body).Key
		switch mode {
		case "", "exact":
			if lastFidelity != nil && lastFidelity.Mode != sim.FidelityExact {
				t.Errorf("fidelity=%q reached the simulation as %+v", mode, lastFidelity)
			}
		default:
			if lastFidelity == nil || string(lastFidelity.Mode) != mode {
				t.Errorf("fidelity=%q reached the simulation as %+v", mode, lastFidelity)
			}
		}
	}
	if keys[""] != keys["exact"] {
		t.Errorf("explicit exact keyed differently from the default: %q vs %q",
			keys["exact"], keys[""])
	}
	if keys["adaptive"] == keys[""] || keys["phase"] == keys[""] || keys["adaptive"] == keys["phase"] {
		t.Errorf("fidelity modes share cache keys: %v", keys)
	}
}

// TestStudyFidelityUnknownMode pins the failure shape: an unknown mode is
// a 400 with the stable error envelope, on both the GET parameter and the
// POST body, and never reaches the simulator.
func TestStudyFidelityUnknownMode(t *testing.T) {
	s := newTestServer(t, nil)
	s.runStudy = func(ctx context.Context, cfg sim.Config, profiles []workload.Profile,
		techs []scaling.Technology, opts sim.StudyOptions) (*sim.StudyResult, error) {
		t.Error("simulation ran for an invalid fidelity mode")
		return stubResult(cfg, techs), nil
	}
	rec, body := get(t, s, "/v1/study?fidelity=turbo")
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("GET status %d, want 400", rec.Code)
	}
	if !strings.Contains(string(body["error"]), CodeBadRequest) {
		t.Errorf("GET error envelope missing code: %s", body["error"])
	}

	rec2, body2 := post(t, s, "/v1/study", `{"fidelity":"turbo"}`)
	if rec2.Code != http.StatusBadRequest {
		t.Fatalf("POST status %d, want 400", rec2.Code)
	}
	if !strings.Contains(string(body2["error"]), CodeBadRequest) {
		t.Errorf("POST error envelope missing code: %s", body2["error"])
	}
}

// TestServerDefaultFidelity pins the server-level default (the rampd
// -default-fidelity flag lands in Config.Sim.Fidelity): requests naming no
// mode inherit it, and an explicit "exact" overrides it back to nil.
func TestServerDefaultFidelity(t *testing.T) {
	s := newTestServer(t, func(c *Config) {
		c.Sim.Fidelity = &sim.Fidelity{Mode: sim.FidelityPhase}
	})
	var lastFidelity *sim.Fidelity
	s.runStudy = func(ctx context.Context, cfg sim.Config, profiles []workload.Profile,
		techs []scaling.Technology, opts sim.StudyOptions) (*sim.StudyResult, error) {
		lastFidelity = cfg.Fidelity
		return stubResult(cfg, techs), nil
	}
	if rec, _ := get(t, s, "/v1/study?apps=ammp&techs=130nm"); rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if lastFidelity == nil || lastFidelity.Mode != sim.FidelityPhase {
		t.Errorf("default fidelity not inherited: %+v", lastFidelity)
	}
	if rec, _ := get(t, s, "/v1/study?apps=ammp&techs=130nm&fidelity=exact"); rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if lastFidelity != nil {
		t.Errorf("explicit exact did not override the server default: %+v", lastFidelity)
	}
}
