package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"github.com/ramp-sim/ramp/internal/obs"
	"github.com/ramp-sim/ramp/internal/sim"
)

// The ops plane: query surfaces over the run ledger. Aggregate counters
// live at /metrics; these endpoints answer the per-run question — what
// did one study cost, stage by stage, and which cache saved it.
//
//	GET /v1/ops/runs        recent run records, newest first; filters
//	                        tenant=, key=, outcome=, kind=, limit=
//	GET /v1/ops/runs/{id}   one record by ledger ID
//	GET /v1/ops/tail        NDJSON live stream of records as runs finish
//	                        (?replay=N prepends the last N records),
//	                        with the standard stream heartbeats
//
// All three answer 404 when the ledger is disabled (Config.LedgerSize
// < 0). Every appended record is also logged as one wide "run" line, so
// log pipelines get the same attribution without polling.

// OpsRunsResponse is the GET /v1/ops/runs payload.
type OpsRunsResponse struct {
	SchemaVersion int             `json:"schema_version"`
	Ledger        obs.LedgerStats `json:"ledger"`
	Runs          []obs.RunRecord `json:"runs"`
}

// OpsRunResponse is the GET /v1/ops/runs/{id} payload.
type OpsRunResponse struct {
	SchemaVersion int           `json:"schema_version"`
	Run           obs.RunRecord `json:"run"`
}

// opsMetaEvent opens the /v1/ops/tail stream.
type opsMetaEvent struct {
	SchemaVersion int             `json:"schema_version"`
	Event         string          `json:"event"` // "meta"
	RequestID     string          `json:"request_id,omitempty"`
	Ledger        obs.LedgerStats `json:"ledger"`
}

// opsRunEvent carries one run record on the tail stream.
type opsRunEvent struct {
	Event string        `json:"event"` // "run"
	Run   obs.RunRecord `json:"run"`
}

// opsDefaultLimit caps /v1/ops/runs responses when the client names no
// limit.
const opsDefaultLimit = 100

// ledgerEnabled 404s ops requests when the ledger is off. 404 reuses
// CodeBadRequest — the error-code set is closed (precedent: the trace
// endpoint's "nothing retained" answer).
func (s *Server) ledgerEnabled(w http.ResponseWriter) bool {
	if s.ledger != nil {
		return true
	}
	s.writeError(w, http.StatusNotFound, CodeBadRequest,
		errors.New("run ledger disabled (server started with a negative ledger size)"))
	return false
}

// handleOpsRuns lists recent run records, newest first.
func (s *Server) handleOpsRuns(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, errors.New("use GET"))
		return
	}
	if !s.ledgerEnabled(w) {
		return
	}
	q := r.URL.Query()
	f := obs.RunFilter{
		Tenant:  q.Get("tenant"),
		Key:     q.Get("key"),
		Outcome: q.Get("outcome"),
		Kind:    q.Get("kind"),
		Limit:   opsDefaultLimit,
	}
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			s.writeError(w, http.StatusBadRequest, CodeBadRequest, fmt.Errorf("bad limit %q", v))
			return
		}
		f.Limit = n
	}
	runs := s.ledger.Runs(f)
	if runs == nil {
		runs = []obs.RunRecord{}
	}
	s.writeJSON(w, http.StatusOK, OpsRunsResponse{
		SchemaVersion: SchemaVersion, Ledger: s.ledger.Stats(), Runs: runs})
}

// handleOpsRun serves one record by ID.
func (s *Server) handleOpsRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, errors.New("use GET"))
		return
	}
	if !s.ledgerEnabled(w) {
		return
	}
	raw := strings.TrimPrefix(r.URL.Path, "/v1/ops/runs/")
	id, err := strconv.ParseUint(raw, 10, 64)
	if err != nil || raw == "" {
		s.writeError(w, http.StatusBadRequest, CodeBadRequest, fmt.Errorf("bad run id %q", raw))
		return
	}
	rec, ok := s.ledger.Get(id)
	if !ok {
		s.writeError(w, http.StatusNotFound, CodeBadRequest,
			fmt.Errorf("run %d not retained (ledger keeps the last %d records)",
				id, s.ledger.Stats().Capacity))
		return
	}
	s.writeJSON(w, http.StatusOK, OpsRunResponse{SchemaVersion: SchemaVersion, Run: rec})
}

// handleOpsTail streams run records live as NDJSON: a meta event, an
// optional replay of recent records (?replay=N, oldest first), then one
// "run" event per completed run plus idle heartbeats. Records appended
// faster than the client drains are dropped, never buffered unboundedly
// — the ledger itself remains the queryable source of truth.
func (s *Server) handleOpsTail(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, errors.New("use GET"))
		return
	}
	if !s.ledgerEnabled(w) {
		return
	}
	replay := 0
	if v := r.URL.Query().Get("replay"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			s.writeError(w, http.StatusBadRequest, CodeBadRequest, fmt.Errorf("bad replay %q", v))
			return
		}
		replay = n
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		s.writeError(w, http.StatusInternalServerError, CodeInternal,
			errors.New("streaming unsupported by connection"))
		return
	}
	s.metrics.Streams.Add(1)
	s.obs.streams.Inc()

	// Subscribe before the replay snapshot so no record falls between
	// them; records replayed AND delivered live are suppressed by ID.
	live, cancel := s.ledger.Subscribe(64)
	defer cancel()

	sw := s.newStreamWriter(w, flusher)
	sw.send(opsMetaEvent{SchemaVersion: SchemaVersion, Event: "meta",
		RequestID: obs.RequestIDFrom(r.Context()), Ledger: s.ledger.Stats()})
	var lastSent uint64
	if replay > 0 {
		recent := s.ledger.Runs(obs.RunFilter{Limit: replay})
		for i := len(recent) - 1; i >= 0; i-- { // newest-first → chronological
			sw.send(opsRunEvent{Event: "run", Run: recent[i]})
			lastSent = recent[i].ID
		}
	}

	heartbeat := time.NewTicker(s.cfg.StreamHeartbeat)
	defer heartbeat.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-s.baseCtx.Done():
			return
		case rec := <-live:
			if rec.ID <= lastSent {
				continue
			}
			lastSent = rec.ID
			sw.send(opsRunEvent{Event: "run", Run: rec})
		case <-heartbeat.C:
			sw.send(streamHeartbeatEvent{"heartbeat"})
		}
	}
}

// run-record assembly --------------------------------------------------------

// runOutcome classifies an execution error into a ledger outcome and its
// message.
func runOutcome(err error) (outcome, msg string) {
	if err == nil {
		return obs.RunOK, ""
	}
	return obs.OutcomeFor(err), err.Error()
}

// fidelityLabel is the effective fidelity mode of a resolved config.
func fidelityLabel(cfg sim.Config) string {
	if cfg.Fidelity == nil || cfg.Fidelity.Mode == "" {
		return string(sim.FidelityExact)
	}
	return string(cfg.Fidelity.Mode)
}

// newRunRecord assembles the identity and configuration half of a run
// record — who ran what, under which request and trace, with which
// outcome. Stage and cache costs are merged in by the caller from its
// RunStats before appendRun.
func (s *Server) newRunRecord(ctx context.Context, kind, key string, cfg sim.Config,
	nProfiles int, start time.Time, resultCache string, err error) obs.RunRecord {
	outcome, msg := runOutcome(err)
	return obs.RunRecord{
		Kind:         kind,
		Key:          key,
		Tenant:       tenantFromCtx(ctx),
		RequestID:    obs.RequestIDFrom(ctx),
		TraceID:      obs.TraceContextFrom(ctx).TraceID,
		Fidelity:     fidelityLabel(cfg),
		Mechanisms:   cfg.Mechanisms,
		Outcome:      outcome,
		Error:        msg,
		ResultCache:  resultCache,
		Start:        start.UTC(),
		WallMS:       float64(s.now().Sub(start)) / float64(time.Millisecond),
		Instructions: cfg.Instructions * int64(nProfiles),
	}
}

// appendRun stores the record in the ledger and emits the canonical
// one-line wide event — every dimension of the run on a single "run"
// log record, so log pipelines can attribute cost without scraping
// /v1/ops. No-op when the ledger is disabled.
func (s *Server) appendRun(rec obs.RunRecord) {
	if s.ledger == nil {
		return
	}
	rec = s.ledger.Append(rec)
	s.logger.Info("run",
		"run_id", rec.ID,
		"kind", rec.Kind,
		"key", rec.Key,
		"tenant", rec.Tenant,
		"request_id", rec.RequestID,
		"trace_id", rec.TraceID,
		"job_id", rec.JobID,
		"fidelity", rec.Fidelity,
		"outcome", rec.Outcome,
		"result_cache", rec.ResultCache,
		"wall_ms", rec.WallMS,
		"queue_ms", rec.QueueMS,
		"cpu_ms", rec.CPUMS,
		"instructions", rec.Instructions,
		"cells", rec.Cells,
		"cells_computed", rec.CellsComputed,
		"replicas", rec.Replicas,
		"error", rec.Error,
	)
}
