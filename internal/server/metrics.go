package server

import (
	"expvar"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ramp-sim/ramp/internal/sched"
	"github.com/ramp-sim/ramp/internal/sim"
	"github.com/ramp-sim/ramp/internal/store"
)

// latencyBucketsMS are the upper bounds of the request-latency histogram
// in milliseconds; requests above the last bound land in the overflow
// bucket.
var latencyBucketsMS = []float64{1, 5, 10, 50, 100, 500, 1000, 5000, 30000}

// Metrics aggregates the server's observability counters on expvar types.
// The vars are intentionally not published to the global expvar registry
// here — expvar.Publish panics on duplicate names, which would forbid the
// multiple servers tests construct. Publish registers the whole set under
// one name when a process wants the standard /debug/vars integration.
type Metrics struct {
	// Requests counts handled requests per endpoint.
	Requests *expvar.Map
	// Status counts responses per HTTP status code.
	Status *expvar.Map
	// Latency is the request-latency histogram ("le_<bound>ms" buckets
	// plus "overflow").
	Latency *expvar.Map
	// Coalesced counts requests that joined an existing identical flight
	// instead of starting their own simulation.
	Coalesced expvar.Int
	// Shed counts requests rejected with 429 by the admission queue.
	Shed expvar.Int
	// InFlightHTTP gauges currently executing HTTP requests.
	InFlightHTTP expvar.Int
	// Studies counts simulations actually started on the scheduler pool.
	Studies expvar.Int
	// Streams counts /v1/study/stream responses that began streaming
	// (cache replays included; admission rejections excluded).
	Streams expvar.Int
	// MCStudies counts /v1/study/mc responses that began streaming
	// (cache replays included; admission rejections excluded).
	MCStudies expvar.Int
	// MCReplicas counts Monte Carlo lifetime replicas drawn by completed
	// /v1/study/mc computations (cache replays excluded).
	MCReplicas expvar.Int
	// Batches counts accepted POST /v1/batch submissions.
	Batches expvar.Int
}

// NewMetrics returns a zeroed metric set.
func NewMetrics() *Metrics {
	return &Metrics{
		Requests: new(expvar.Map).Init(),
		Status:   new(expvar.Map).Init(),
		Latency:  new(expvar.Map).Init(),
	}
}

// ObserveLatency adds one request to the latency histogram.
func (m *Metrics) ObserveLatency(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	for _, b := range latencyBucketsMS {
		if ms <= b {
			m.Latency.Add(fmt.Sprintf("le_%gms", b), 1)
			return
		}
	}
	m.Latency.Add("overflow", 1)
}

// Snapshot flattens the metrics — plus the cache, scheduler, and
// stage-cache views — to a JSON-marshalable map, the /metrics payload.
// ratio fields are computed at snapshot time so readers need no
// client-side arithmetic.
func (m *Metrics) Snapshot(cache *Cache, stats sched.Stats, stage *sim.StageCache) map[string]any {
	out := map[string]any{
		"schema_version":    SchemaVersion,
		"requests_total":    mapSnapshot(m.Requests),
		"status_total":      mapSnapshot(m.Status),
		"latency_ms":        mapSnapshot(m.Latency),
		"coalesced_total":   m.Coalesced.Value(),
		"shed_total":        m.Shed.Value(),
		"inflight_http":     m.InFlightHTTP.Value(),
		"studies_total":     m.Studies.Value(),
		"streams_total":     m.Streams.Value(),
		"mc_studies_total":  m.MCStudies.Value(),
		"mc_replicas_total": m.MCReplicas.Value(),
		"batches_total":     m.Batches.Value(),
	}
	if cache != nil {
		cs := cache.Stats()
		ratio := 0.0
		if lookups := cs.Hits + cs.Misses; lookups > 0 {
			ratio = float64(cs.Hits) / float64(lookups)
		}
		out["cache"] = map[string]any{
			"entries":   cs.Entries,
			"hits":      cs.Hits,
			"misses":    cs.Misses,
			"evicted":   cs.Evicted,
			"expired":   cs.Expired,
			"hit_ratio": ratio,
		}
	}
	if stats != nil {
		// Prefer a consistent point-in-time snapshot when the source offers
		// one (sched.Counters does): four independent loads can otherwise
		// observe a task as simultaneously queued and in flight.
		var sn sched.CountersSnapshot
		if src, ok := stats.(interface{ Snapshot() sched.CountersSnapshot }); ok {
			sn = src.Snapshot()
		} else {
			sn = sched.CountersSnapshot{
				QueueDepth: stats.QueueDepth(),
				InFlight:   stats.InFlight(),
				Completed:  stats.Completed(),
				Failed:     stats.Failed(),
			}
		}
		out["sched"] = map[string]any{
			"queue_depth": sn.QueueDepth,
			"in_flight":   sn.InFlight,
			"completed":   sn.Completed,
			"failed":      sn.Failed,
		}
	}
	if stage != nil {
		ss := stage.Stats()
		out["stage_cache"] = map[string]any{
			"timing":  storeSnapshot(ss.Timing),
			"thermal": storeSnapshot(ss.Thermal),
			"fit":     storeSnapshot(ss.FIT),
		}
	}
	return out
}

// metricsSnapshot assembles the full /metrics JSON document: the expvar
// counters plus the admission-queue and batch-job gauges only the server
// can see. The jobs block marshals jobs.Stats (queued, running, live,
// capacity, *_total counters).
func (s *Server) metricsSnapshot() map[string]any {
	out := s.metrics.Snapshot(s.cache, s.schedStats, s.stageCache)
	out["admission_queue_depth"] = len(s.admission)
	out["admission_capacity"] = cap(s.admission)
	out["jobs"] = s.jobs.Stats()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	out["runtime"] = map[string]any{
		"goroutines":             runtime.NumGoroutine(),
		"heap_bytes":             ms.HeapAlloc,
		"gc_pause_total_seconds": float64(ms.PauseTotalNs) / 1e9,
		"num_gc":                 ms.NumGC,
	}
	if s.ledger != nil {
		out["ledger"] = s.ledger.Stats()
	}
	return out
}

// storeSnapshot flattens one stage store's counters.
func storeSnapshot(s store.Stats) map[string]any {
	return map[string]any{
		"entries":       s.Entries,
		"mem_hits":      s.MemHits,
		"disk_hits":     s.DiskHits,
		"misses":        s.Misses,
		"puts":          s.Puts,
		"evicted":       s.Evicted,
		"disk_failures": s.DiskFailures,
	}
}

// mapSnapshot copies an expvar.Map into a plain map with sorted iteration
// (expvar.Map.Do already visits keys in sorted order).
func mapSnapshot(m *expvar.Map) map[string]int64 {
	out := map[string]int64{}
	m.Do(func(kv expvar.KeyValue) {
		if v, ok := kv.Value.(*expvar.Int); ok {
			out[kv.Key] = v.Value()
		}
	})
	return out
}

// publishedServers routes each published expvar name to the server that
// most recently claimed it. expvar.Publish panics on duplicate names and
// offers no unpublish, so the Func registered once per name reads through
// this indirection instead of closing over a single Server.
var (
	publishMu        sync.Mutex
	publishedServers = map[string]*atomic.Pointer[Server]{}
)

// Publish registers the server's metric snapshot under name in the global
// expvar registry (visible at /debug/vars). Safe to call again for the
// same name — e.g. a server restarted within one process — in which case
// the newest server's metrics are served.
func (s *Server) Publish(name string) {
	publishMu.Lock()
	defer publishMu.Unlock()
	p, ok := publishedServers[name]
	if !ok {
		p = new(atomic.Pointer[Server])
		publishedServers[name] = p
		expvar.Publish(name, expvar.Func(func() any {
			srv := p.Load()
			if srv == nil {
				return nil
			}
			return srv.metricsSnapshot()
		}))
	}
	p.Store(s)
}

// sortedBucketNames returns the histogram bucket labels in bound order,
// for deterministic rendering in tests and docs.
func sortedBucketNames() []string {
	names := make([]string, 0, len(latencyBucketsMS)+1)
	for _, b := range latencyBucketsMS {
		names = append(names, fmt.Sprintf("le_%gms", b))
	}
	sort.Strings(names)
	return append(names, "overflow")
}
