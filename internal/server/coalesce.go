package server

import (
	"context"
	"sync"
)

// flightGroup deduplicates concurrent identical computations: the first
// request for a key becomes the leader and runs fn exactly once; followers
// arriving while the flight is open wait for the leader's result instead
// of starting their own simulation.
//
// The flight's context is detached from any single request and derived
// from a base (server-lifetime) context, so one impatient caller cannot
// cancel a simulation other callers are still waiting on. Waiters are
// reference-counted: when the last waiter abandons the flight — every
// request timed out or disconnected — the flight context is cancelled and
// the in-progress simulation unwinds promptly instead of burning the pool
// for a result nobody wants.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flight
	// onCoalesce, when non-nil, fires at the moment a follower joins an
	// open flight (not when the flight resolves), so observability sees
	// coalescing as it happens.
	onCoalesce func()
}

// flight is one in-progress computation.
type flight struct {
	key     string
	cancel  context.CancelFunc
	done    chan struct{}
	val     any
	err     error
	waiters int
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: make(map[string]*flight)}
}

// Do returns fn's result for key, running fn at most once per open flight.
// base parents the flight context handed to fn; ctx only governs this
// caller's wait. coalesced reports whether the caller joined an existing
// flight rather than leading a new one.
func (g *flightGroup) Do(ctx, base context.Context, key string,
	fn func(context.Context) (any, error)) (val any, err error, coalesced bool) {
	g.mu.Lock()
	c, ok := g.calls[key]
	if ok {
		c.waiters++
		g.mu.Unlock()
		coalesced = true
		if g.onCoalesce != nil {
			g.onCoalesce()
		}
	} else {
		fctx, cancel := context.WithCancel(base)
		c = &flight{key: key, cancel: cancel, done: make(chan struct{}), waiters: 1}
		g.calls[key] = c
		g.mu.Unlock()
		go func() {
			v, e := fn(fctx)
			g.mu.Lock()
			c.val, c.err = v, e
			if g.calls[key] == c {
				delete(g.calls, key)
			}
			g.mu.Unlock()
			close(c.done)
		}()
	}

	select {
	case <-c.done:
		g.leave(c)
		return c.val, c.err, coalesced
	case <-ctx.Done():
		g.leave(c)
		return nil, ctx.Err(), coalesced
	}
}

// leave unregisters a waiter. The last waiter to leave cancels the flight
// context — a no-op if fn already returned, an abort if everyone gave up —
// and detaches a still-running flight from the key so the next request
// starts fresh instead of inheriting a cancelled computation.
func (g *flightGroup) leave(c *flight) {
	g.mu.Lock()
	c.waiters--
	if c.waiters == 0 {
		select {
		case <-c.done:
		default:
			if g.calls[c.key] == c {
				delete(g.calls, c.key)
			}
		}
		c.cancel()
	}
	g.mu.Unlock()
}
