package server

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/ramp-sim/ramp/internal/scaling"
	"github.com/ramp-sim/ramp/internal/sim"
	"github.com/ramp-sim/ramp/internal/workload"
)

// streamEvent is the decoded superset of every NDJSON event type.
type streamEvent struct {
	SchemaVersion int             `json:"schema_version"`
	Event         string          `json:"event"`
	Key           string          `json:"key"`
	CellsTotal    int             `json:"cells_total"`
	Cache         string          `json:"cache"`
	Done          int             `json:"done"`
	Total         int             `json:"total"`
	Source        string          `json:"source"`
	App           json.RawMessage `json:"app"`
	Study         json.RawMessage `json:"study"`
	Error         *ErrorBody      `json:"error"`
}

// openStream issues a real HTTP request against ts and returns a
// line-decoder over the NDJSON body.
func openStream(t *testing.T, ts *httptest.Server, target string) (*http.Response, *bufio.Scanner) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, ts.URL+target, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	return resp, sc
}

func decodeEvent(t *testing.T, line []byte) streamEvent {
	t.Helper()
	var ev streamEvent
	if err := json.Unmarshal(line, &ev); err != nil {
		t.Fatalf("bad stream line %q: %v", line, err)
	}
	return ev
}

// TestStreamOrderingAgainstStub pins the protocol with a fully controlled
// simulation: the handler must deliver a cell event to the client while
// the study is still running — the stub refuses to finish until the test
// has observed the first event on the wire.
func TestStreamOrderingAgainstStub(t *testing.T) {
	s := newTestServer(t, nil)
	observed := make(chan struct{})
	s.runStudy = func(ctx context.Context, cfg sim.Config, profiles []workload.Profile,
		techs []scaling.Technology, opts sim.StudyOptions) (*sim.StudyResult, error) {
		opts.OnApp(sim.AppEvent{
			Run:       sim.AppRun{App: profiles[0].Name, Tech: techs[0]},
			Source:    sim.CellComputed,
			CellsDone: 1, CellsTotal: len(profiles) * len(techs),
		})
		select {
		case <-observed: // the client has read the first event
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return stubResult(cfg, techs), nil
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, sc := openStream(t, ts, "/v1/study/stream?apps=ammp&techs=130nm")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type = %q", ct)
	}

	if !sc.Scan() {
		t.Fatal("no meta event")
	}
	metaEv := decodeEvent(t, sc.Bytes())
	if metaEv.Event != "meta" || metaEv.SchemaVersion != SchemaVersion ||
		metaEv.Key == "" || metaEv.CellsTotal != 2 || metaEv.Cache != "miss" {
		t.Fatalf("bad meta event: %+v", metaEv)
	}

	if !sc.Scan() {
		t.Fatal("no first cell event")
	}
	appEv := decodeEvent(t, sc.Bytes())
	if appEv.Event != "app" || appEv.Done != 1 || appEv.Total != 2 || appEv.Source != sim.CellComputed {
		t.Fatalf("bad app event: %+v", appEv)
	}
	// Only now may the simulation complete: the cell demonstrably reached
	// the client before the study finished.
	close(observed)

	if !sc.Scan() {
		t.Fatal("no terminal event")
	}
	study := decodeEvent(t, sc.Bytes())
	if study.Event != "study" || study.Study == nil {
		t.Fatalf("bad terminal event: %+v", study)
	}
	if sc.Scan() {
		t.Fatalf("unexpected trailing line %q", sc.Text())
	}
}

// TestStreamCancelMidwayFreesAdmission aborts a stream after its first
// cell event and requires that (a) the simulation context is cancelled
// and (b) the admission slot is returned, so the next request computes.
func TestStreamCancelMidwayFreesAdmission(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.MaxQueue = 1 })
	sawCancel := make(chan error, 1)
	s.runStudy = func(ctx context.Context, cfg sim.Config, profiles []workload.Profile,
		techs []scaling.Technology, opts sim.StudyOptions) (*sim.StudyResult, error) {
		opts.OnApp(sim.AppEvent{
			Run:       sim.AppRun{App: profiles[0].Name, Tech: techs[0]},
			Source:    sim.CellComputed,
			CellsDone: 1, CellsTotal: len(profiles) * len(techs),
		})
		<-ctx.Done() // only a client disconnect can release the stub
		sawCancel <- ctx.Err()
		return nil, ctx.Err()
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		ts.URL+"/v1/study/stream?apps=ammp&techs=130nm", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for i := 0; i < 2; i++ { // meta + first app event
		if !sc.Scan() {
			t.Fatalf("stream ended after %d events", i)
		}
	}
	cancel() // drop the connection mid-stream

	select {
	case err := <-sawCancel:
		if err == nil {
			t.Fatal("simulation context not cancelled")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("client disconnect never cancelled the simulation")
	}

	// The admission slot (MaxQueue=1) must come back for the next request.
	s.runStudy = func(ctx context.Context, cfg sim.Config, profiles []workload.Profile,
		techs []scaling.Technology, opts sim.StudyOptions) (*sim.StudyResult, error) {
		return stubResult(cfg, techs), nil
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec,
			httptest.NewRequest(http.MethodGet, "/v1/study?apps=gcc&techs=130nm", nil))
		if rec.Code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("admission slot never freed: last status %d", rec.Code)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestStreamResultCacheReplay: once the result cache holds the study, a
// stream replays every cell (source "result-cache") and the document
// without taking an admission slot or running the simulation.
func TestStreamResultCacheReplay(t *testing.T) {
	s := newTestServer(t, nil)
	var calls int
	s.runStudy = func(ctx context.Context, cfg sim.Config, profiles []workload.Profile,
		techs []scaling.Technology, opts sim.StudyOptions) (*sim.StudyResult, error) {
		calls++
		res := stubResult(cfg, techs)
		for _, p := range profiles {
			for _, tech := range techs {
				res.Apps = append(res.Apps, sim.AppRun{App: p.Name, Suite: p.Suite, Tech: tech})
			}
		}
		return res, nil
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Warm the result cache through the blocking endpoint.
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec,
		httptest.NewRequest(http.MethodGet, "/v1/study?apps=ammp,gcc&techs=130nm", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("warmup status = %d: %s", rec.Code, rec.Body.String())
	}

	resp, sc := openStream(t, ts, "/v1/study/stream?apps=ammp,gcc&techs=130nm")
	defer resp.Body.Close()
	var events []streamEvent
	for sc.Scan() {
		events = append(events, decodeEvent(t, sc.Bytes()))
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("cache replay ran the simulation again (%d calls)", calls)
	}
	// meta + 4 cells (2 apps × 2 techs: 180nm anchor + 130nm) + study.
	if len(events) != 6 {
		t.Fatalf("got %d events, want 6: %+v", len(events), events)
	}
	if events[0].Event != "meta" || events[0].Cache != "hit" {
		t.Fatalf("bad meta event: %+v", events[0])
	}
	for _, ev := range events[1:5] {
		if ev.Event != "app" || ev.Source != streamSourceResultCache || ev.Total != 4 {
			t.Fatalf("bad replayed cell: %+v", ev)
		}
	}
	if events[5].Event != "study" {
		t.Fatalf("bad terminal event: %+v", events[5])
	}
}

// TestStreamOverloadedAndBadRequest: admission rejections and invalid
// requests use the standard error envelope before any NDJSON is written.
func TestStreamOverloadedAndBadRequest(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.MaxQueue = 1 })
	block := make(chan struct{})
	s.runStudy = func(ctx context.Context, cfg sim.Config, profiles []workload.Profile,
		techs []scaling.Technology, opts sim.StudyOptions) (*sim.StudyResult, error) {
		<-block
		return stubResult(cfg, techs), nil
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Occupy the only admission slot with a blocking stream.
	resp, sc := openStream(t, ts, "/v1/study/stream?apps=ammp&techs=130nm")
	defer resp.Body.Close()
	defer close(block)
	if !sc.Scan() {
		t.Fatal("no meta event from the occupying stream")
	}

	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec,
		httptest.NewRequest(http.MethodGet, "/v1/study/stream?apps=gcc&techs=130nm", nil))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("overloaded stream status = %d", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Errorf("429 without Retry-After")
	}
	var envelope ErrorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &envelope); err != nil {
		t.Fatal(err)
	}
	if envelope.SchemaVersion != SchemaVersion || envelope.Error.Code != CodeOverloaded {
		t.Errorf("bad overload envelope: %+v", envelope)
	}

	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec,
		httptest.NewRequest(http.MethodGet, "/v1/study/stream?apps=nonexistent", nil))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad-request stream status = %d", rec.Code)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &envelope); err != nil {
		t.Fatal(err)
	}
	if envelope.Error.Code != CodeBadRequest || envelope.Error.Message == "" {
		t.Errorf("bad bad-request envelope: %+v", envelope)
	}
}

// TestStreamHeartbeat: an idle computation produces heartbeat events at
// the configured interval so proxies keep the connection open.
func TestStreamHeartbeat(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.StreamHeartbeat = 10 * time.Millisecond })
	release := make(chan struct{})
	s.runStudy = func(ctx context.Context, cfg sim.Config, profiles []workload.Profile,
		techs []scaling.Technology, opts sim.StudyOptions) (*sim.StudyResult, error) {
		select {
		case <-release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return stubResult(cfg, techs), nil
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, sc := openStream(t, ts, "/v1/study/stream?apps=ammp&techs=130nm")
	defer resp.Body.Close()
	if !sc.Scan() {
		t.Fatal("no meta event")
	}
	if !sc.Scan() {
		t.Fatal("no heartbeat")
	}
	hb := decodeEvent(t, sc.Bytes())
	if hb.Event != "heartbeat" {
		t.Fatalf("expected heartbeat, got %+v", hb)
	}
	close(release)
	for sc.Scan() {
		last := decodeEvent(t, sc.Bytes())
		if last.Event == "study" {
			return
		}
	}
	t.Fatal("stream ended without a terminal study event")
}

// TestStreamRealStudy is the end-to-end acceptance path: a real (small)
// simulation streamed over a real connection must deliver its first cell
// event strictly before the study completes — done < total on the first
// app event — and terminate with the calibrated document. A repeated
// stream must then replay from the result cache without recomputing.
func TestStreamRealStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulation in -short mode")
	}
	s := newTestServer(t, func(c *Config) {
		c.Sim.Instructions = 30_000
		c.DefaultInstructions = 30_000
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const target = "/v1/study/stream?apps=ammp,gcc&techs=130nm,90nm"
	resp, sc := openStream(t, ts, target)
	defer resp.Body.Close()
	if !sc.Scan() {
		t.Fatal("no meta event")
	}
	metaEv := decodeEvent(t, sc.Bytes())
	if metaEv.Event != "meta" || metaEv.CellsTotal != 6 {
		t.Fatalf("bad meta event: %+v", metaEv)
	}
	var apps, studies int
	firstDone, firstTotal := -1, -1
	for sc.Scan() {
		ev := decodeEvent(t, sc.Bytes())
		switch ev.Event {
		case "app":
			if studies != 0 {
				t.Errorf("app event after the terminal study event")
			}
			if apps == 0 {
				firstDone, firstTotal = ev.Done, ev.Total
			}
			apps++
		case "study":
			studies++
		case "heartbeat":
		default:
			t.Fatalf("unknown event %+v", ev)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if apps != 6 || studies != 1 {
		t.Fatalf("streamed %d cells and %d terminals, want 6 and 1", apps, studies)
	}
	if firstDone >= firstTotal {
		t.Errorf("first cell event arrived with done=%d total=%d — not before completion",
			firstDone, firstTotal)
	}

	// An identical repeat replays the whole grid from the result cache.
	resp2, sc2 := openStream(t, ts, target)
	defer resp2.Body.Close()
	warmSources := map[string]int{}
	for sc2.Scan() {
		ev := decodeEvent(t, sc2.Bytes())
		if ev.Event == "app" {
			warmSources[ev.Source]++
		}
	}
	if warmSources[streamSourceResultCache] != 6 {
		t.Errorf("identical repeat was not a whole-result replay: %v", warmSources)
	}
}
