package server

import (
	"container/list"
	"sync"
	"time"
)

// Cache is a content-addressed result cache with LRU eviction and TTL
// expiry. Keys are the canonical study hashes from sim.StudyKey, so a hit
// is by construction the exact result of the requested computation; only
// successful results are ever stored, which keeps deadline-exceeded and
// cancelled runs from poisoning the cache.
type Cache struct {
	mu      sync.Mutex
	max     int
	ttl     time.Duration
	ll      *list.List // front = most recently used
	items   map[string]*list.Element
	now     func() time.Time
	hits    int64
	misses  int64
	evicted int64
	expired int64
}

// cacheEntry is one resident result.
type cacheEntry struct {
	key     string
	val     any
	expires time.Time // zero = no expiry
}

// NewCache returns a cache bounded to max entries (min 1) with the given
// TTL; a non-positive TTL disables expiry. now overrides the clock for
// tests; nil uses time.Now.
func NewCache(max int, ttl time.Duration, now func() time.Time) *Cache {
	if max < 1 {
		max = 1
	}
	if now == nil {
		now = time.Now
	}
	return &Cache{
		max:   max,
		ttl:   ttl,
		ll:    list.New(),
		items: make(map[string]*list.Element),
		now:   now,
	}
}

// Get returns the cached value for key, promoting it to most recently
// used. Expired entries are removed and reported as misses.
func (c *Cache) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	ent := el.Value.(*cacheEntry)
	if !ent.expires.IsZero() && !c.now().Before(ent.expires) {
		c.removeLocked(el)
		c.expired++
		c.misses++
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits++
	return ent.val, true
}

// peek returns the live value for key without touching the hit/miss
// counters or the LRU order. The flight leader's double-check uses it so
// each served request counts exactly one lookup in the hit-ratio metric.
func (c *Cache) peek(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	ent := el.Value.(*cacheEntry)
	if !ent.expires.IsZero() && !c.now().Before(ent.expires) {
		return nil, false
	}
	return ent.val, true
}

// Put stores the value under key, evicting the least recently used entry
// when the bound is exceeded. Re-putting an existing key refreshes its
// value and TTL.
func (c *Cache) Put(key string, val any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var expires time.Time
	if c.ttl > 0 {
		expires = c.now().Add(c.ttl)
	}
	if el, ok := c.items[key]; ok {
		ent := el.Value.(*cacheEntry)
		ent.val, ent.expires = val, expires
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, val: val, expires: expires})
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		if oldest == nil {
			break
		}
		c.removeLocked(oldest)
		c.evicted++
	}
}

// removeLocked drops an element; the caller holds c.mu.
func (c *Cache) removeLocked(el *list.Element) {
	ent := el.Value.(*cacheEntry)
	delete(c.items, ent.key)
	c.ll.Remove(el)
}

// Len returns the current entry count.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// CacheStats is a consistent snapshot of the cache counters.
type CacheStats struct {
	Entries                        int
	Hits, Misses, Evicted, Expired int64
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries: c.ll.Len(),
		Hits:    c.hits,
		Misses:  c.misses,
		Evicted: c.evicted,
		Expired: c.expired,
	}
}
