package server

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"

	"github.com/ramp-sim/ramp/internal/scaling"
	"github.com/ramp-sim/ramp/internal/sim"
	"github.com/ramp-sim/ramp/internal/workload"
)

// TestRequestIDAssignment pins the request-ID middleware: a sane inbound
// X-Request-ID is echoed, a hostile one is replaced, and every response
// carries an ID regardless.
func TestRequestIDAssignment(t *testing.T) {
	s := newTestServer(t, nil)
	for _, tc := range []struct {
		inbound string
		echoed  bool
	}{
		{"", false},
		{"client-id-42", true},
		{"evil\"injection\n", false},
		{strings.Repeat("a", 200), false},
	} {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
		if tc.inbound != "" {
			req.Header.Set("X-Request-ID", tc.inbound)
		}
		s.Handler().ServeHTTP(rec, req)
		got := rec.Header().Get("X-Request-ID")
		if got == "" {
			t.Fatalf("inbound %q: no response request ID", tc.inbound)
		}
		if tc.echoed && got != tc.inbound {
			t.Errorf("inbound %q not echoed (got %q)", tc.inbound, got)
		}
		if !tc.echoed && got == tc.inbound {
			t.Errorf("hostile inbound %q echoed verbatim", tc.inbound)
		}
	}
}

// TestErrorEnvelopeCarriesRequestID: error responses must echo the request
// ID so clients can quote it when reporting failures.
func TestErrorEnvelopeCarriesRequestID(t *testing.T) {
	s := newTestServer(t, nil)
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodGet, "/v1/study?apps=not-a-benchmark", nil)
	req.Header.Set("X-Request-ID", "correlate-me")
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status = %d", rec.Code)
	}
	var er ErrorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil {
		t.Fatal(err)
	}
	if er.RequestID != "correlate-me" {
		t.Fatalf("error envelope request_id = %q, want correlate-me", er.RequestID)
	}
}

// TestRequestLogging checks the structured access log: one JSON record per
// request with the request ID, endpoint, status, and duration.
func TestRequestLogging(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex
	logger := slog.New(slog.NewJSONHandler(lockedBuf{&mu, &buf}, nil))
	s := newTestServer(t, func(c *Config) { c.Logger = logger })

	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	req.Header.Set("X-Request-ID", "log-probe")
	s.Handler().ServeHTTP(rec, req)

	mu.Lock()
	defer mu.Unlock()
	var recLine map[string]any
	if err := json.Unmarshal(buf.Bytes(), &recLine); err != nil {
		t.Fatalf("access log is not one JSON record: %v (%q)", err, buf.String())
	}
	if recLine["msg"] != "request" || recLine["request_id"] != "log-probe" ||
		recLine["endpoint"] != "/healthz" || recLine["status"] != float64(200) {
		t.Fatalf("access log record = %v", recLine)
	}
	if _, ok := recLine["duration_ms"].(float64); !ok {
		t.Fatalf("access log missing duration_ms: %v", recLine)
	}
}

// lockedBuf guards a bytes.Buffer for concurrent log writes.
type lockedBuf struct {
	mu  *sync.Mutex
	buf *bytes.Buffer
}

func (l lockedBuf) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.buf.Write(p)
}

// promLine matches a Prometheus text-format sample line, optionally
// carrying an OpenMetrics exemplar suffix on histogram bucket lines
// (` # {trace_id="…"} <value> <unix-seconds>`).
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? (-?[0-9.eE+-]+|\+Inf|-Inf|NaN)( # \{[^{}]*\} -?[0-9.eE+-]+ [0-9]+\.[0-9]+)?$`)

// scrapeProm fetches /metrics?format=prometheus and returns the body.
func scrapeProm(t *testing.T, s *Server) string {
	t.Helper()
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec,
		httptest.NewRequest(http.MethodGet, "/metrics?format=prometheus", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("prometheus scrape status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("prometheus content type = %q", ct)
	}
	return rec.Body.String()
}

// TestPrometheusExpositionFormat validates the exposition's syntax and
// naming conventions on a stub-driven server: every sample line parses,
// every family has HELP and TYPE, counters end in _total, and histograms
// render the full _bucket/_sum/_count triple with a +Inf bucket.
func TestPrometheusExpositionFormat(t *testing.T) {
	s := newTestServer(t, nil)
	s.runStudy = func(ctx context.Context, cfg sim.Config, profiles []workload.Profile,
		techs []scaling.Technology, opts sim.StudyOptions) (*sim.StudyResult, error) {
		return stubResult(cfg, techs), nil
	}
	if rec, _ := get(t, s, "/v1/study?apps=ammp&techs=130nm"); rec.Code != http.StatusOK {
		t.Fatalf("study status = %d", rec.Code)
	}

	body := scrapeProm(t, s)
	typed := map[string]string{}
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			parts := strings.SplitN(line, " ", 4)
			if len(parts) < 4 {
				t.Fatalf("bad comment line %q", line)
			}
			if parts[1] == "TYPE" {
				typed[parts[2]] = parts[3]
			}
			continue
		}
		if !promLine.MatchString(line) {
			t.Errorf("unparseable sample line %q", line)
		}
	}
	for fam, kind := range typed {
		switch kind {
		case "counter":
			if !strings.HasSuffix(fam, "_total") {
				t.Errorf("counter %s lacks _total suffix", fam)
			}
		case "histogram":
			if !strings.HasSuffix(fam, "_seconds") {
				t.Errorf("duration histogram %s lacks _seconds suffix", fam)
			}
			for _, piece := range []string{
				fam + `_bucket{le="+Inf"}`, fam + "_sum", fam + "_count",
			} {
				if !strings.Contains(body, piece) {
					t.Errorf("histogram %s missing %s", fam, piece)
				}
			}
		}
	}
	for _, fam := range []string{
		"ramp_http_requests_total", "ramp_http_responses_total",
		"ramp_http_request_duration_seconds", "ramp_http_inflight_requests",
		"ramp_studies_started_total", "ramp_sched_queue_depth",
		"ramp_result_cache_entries", "ramp_stage_cache_entries",
	} {
		if typed[fam] == "" {
			t.Errorf("family %s not exposed (TYPE lines: %v)", fam, typed)
		}
	}
	if !strings.Contains(body, `ramp_http_requests_total{endpoint="/v1/study"} 1`) {
		t.Errorf("request counter sample missing:\n%s", body)
	}
}

// TestPrometheusStageMetricsFromRealStudy drives one real (tiny) study and
// requires the pipeline-stage histogram to expose exactly the
// timing|thermal|fit label values, and the stage-cache op counters to
// carry stage/op/outcome labels.
func TestPrometheusStageMetricsFromRealStudy(t *testing.T) {
	s := newTestServer(t, nil)
	if rec, _ := get(t, s, "/v1/study?apps=ammp&techs=130nm"); rec.Code != http.StatusOK {
		t.Fatalf("study status = %d", rec.Code)
	}
	body := scrapeProm(t, s)
	for _, stage := range []string{"timing", "thermal", "fit"} {
		if !strings.Contains(body, `ramp_stage_duration_seconds_count{stage="`+stage+`"}`) {
			t.Errorf("no stage latency series for %s:\n%s", stage, body)
		}
		if !strings.Contains(body, `ramp_stage_cache_ops_total{stage="`+stage+`",op="put",outcome="ok"}`) {
			t.Errorf("no cache put counter for %s", stage)
		}
	}
	for _, schedStage := range []string{sim.StageTiming, sim.StageBase, sim.StageWorst} {
		if !strings.Contains(body, `ramp_sched_task_duration_seconds_count{stage="`+schedStage+`"}`) {
			t.Errorf("no sched task latency series for stage %s", schedStage)
		}
		if !strings.Contains(body, `ramp_sched_queue_wait_seconds_count{stage="`+schedStage+`"}`) {
			t.Errorf("no sched queue-wait series for stage %s", schedStage)
		}
	}
}

// TestStudyTraceEndpoint covers /v1/study/trace: 404 before any study,
// then a Perfetto-loadable trace with per-cell spans and cache attributes,
// selection by key, and the list view.
func TestStudyTraceEndpoint(t *testing.T) {
	s := newTestServer(t, nil)

	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/study/trace", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("empty-ring status = %d, want 404", rec.Code)
	}

	okRec, body := get(t, s, "/v1/study?apps=ammp&techs=130nm")
	if okRec.Code != http.StatusOK {
		t.Fatalf("study status = %d", okRec.Code)
	}
	m := meta(t, body)

	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/study/trace", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("trace status = %d: %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("X-Study-Key"); got != m.Key {
		t.Fatalf("X-Study-Key = %q, want %q", got, m.Key)
	}
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not JSON: %v", err)
	}
	cells, cacheGets := 0, 0
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			t.Fatalf("event ph = %q", ev.Ph)
		}
		switch ev.Name {
		case "sim.cell":
			cells++
			if ev.Args["source"] == "" || ev.Args["app"] == "" || ev.Args["tech"] == "" {
				t.Errorf("cell span missing identity attrs: %v", ev.Args)
			}
		case "store.get":
			cacheGets++
			if r := ev.Args["result"]; r != "hit" && r != "miss" {
				t.Errorf("cache get span result = %q", r)
			}
		}
	}
	if cells != 2 { // base + 130nm for one app
		t.Errorf("cell spans = %d, want 2", cells)
	}
	if cacheGets == 0 {
		t.Error("no cache lookup spans in trace")
	}

	// Selection by key, and a miss for an unknown key.
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec,
		httptest.NewRequest(http.MethodGet, "/v1/study/trace?key="+m.Key, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("trace by key status = %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec,
		httptest.NewRequest(http.MethodGet, "/v1/study/trace?key=nope", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown key status = %d, want 404", rec.Code)
	}

	// List view.
	_, listBody := get(t, s, "/v1/study/trace?list=1")
	var traces []struct {
		Key       string `json:"key"`
		RequestID string `json:"request_id"`
		Spans     int    `json:"spans"`
	}
	if err := json.Unmarshal(listBody["traces"], &traces); err != nil {
		t.Fatal(err)
	}
	if len(traces) != 1 || traces[0].Key != m.Key || traces[0].Spans == 0 ||
		traces[0].RequestID == "" {
		t.Fatalf("trace list = %+v", traces)
	}
}

// TestStreamMetaCarriesRequestID: the stream's first event must echo the
// request ID so NDJSON consumers can correlate with server logs.
func TestStreamMetaCarriesRequestID(t *testing.T) {
	s := newTestServer(t, nil)
	s.runStudy = func(ctx context.Context, cfg sim.Config, profiles []workload.Profile,
		techs []scaling.Technology, opts sim.StudyOptions) (*sim.StudyResult, error) {
		return stubResult(cfg, techs), nil
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/study/stream?apps=ammp&techs=130nm", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-ID", "stream-probe")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var metaEv struct {
		Event     string `json:"event"`
		RequestID string `json:"request_id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&metaEv); err != nil {
		t.Fatal(err)
	}
	if metaEv.Event != "meta" || metaEv.RequestID != "stream-probe" {
		t.Fatalf("meta event = %+v", metaEv)
	}
}

// TestMetricsConsistentUnderStreamingLoad is the snapshot-consistency
// regression test: both /metrics formats are hammered while a streaming
// study emits cells, with the race detector watching every counter path
// (sched counters, registry instruments, store observer, span sinks).
func TestMetricsConsistentUnderStreamingLoad(t *testing.T) {
	s := newTestServer(t, nil)
	release := make(chan struct{})
	s.runStudy = func(ctx context.Context, cfg sim.Config, profiles []workload.Profile,
		techs []scaling.Technology, opts sim.StudyOptions) (*sim.StudyResult, error) {
		total := len(profiles) * len(techs)
		for i := 0; i < total; i++ {
			opts.OnApp(sim.AppEvent{
				Run:       sim.AppRun{App: profiles[0].Name, Tech: techs[0]},
				Source:    sim.CellComputed,
				CellsDone: i + 1, CellsTotal: total,
			})
		}
		select {
		case <-release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return stubResult(cfg, techs), nil
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	streamDone := make(chan struct{})
	go func() {
		defer close(streamDone)
		resp, sc := openStream(t, ts, "/v1/study/stream?apps=ammp,gzip&techs=130nm")
		defer resp.Body.Close()
		for sc.Scan() {
		}
	}()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			target := "/metrics"
			if g%2 == 1 {
				target = "/metrics?format=prometheus"
			}
			for {
				select {
				case <-stop:
					return
				default:
				}
				rec := httptest.NewRecorder()
				s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, target, nil))
				if rec.Code != http.StatusOK {
					t.Errorf("%s status = %d", target, rec.Code)
					return
				}
			}
		}(g)
	}
	close(release)
	<-streamDone
	close(stop)
	wg.Wait()

	// The JSON snapshot must still be coherent after the churn.
	_, body := get(t, s, "/metrics")
	var schedSnap map[string]int64
	if err := json.Unmarshal(body["sched"], &schedSnap); err != nil {
		t.Fatal(err)
	}
	if schedSnap["queue_depth"] < 0 || schedSnap["in_flight"] < 0 {
		t.Fatalf("negative sched gauges: %v", schedSnap)
	}
}

// TestMetricsUnknownFormatRejected pins the format negotiation.
func TestMetricsUnknownFormatRejected(t *testing.T) {
	s := newTestServer(t, nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics?format=xml", nil))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", rec.Code)
	}
}
