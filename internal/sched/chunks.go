package sched

import (
	"context"
	"fmt"
)

// NumChunks returns the number of fixed-size chunks needed to cover n
// items, ⌈n/chunk⌉. It mirrors the partition MapChunks uses so callers
// can size result buffers (e.g. one progress event per chunk).
func NumChunks(n, chunk int) int {
	if n <= 0 {
		return 0
	}
	if chunk < 1 {
		return 1
	}
	return (n + chunk - 1) / chunk
}

// MapChunks covers [0, n) with fixed-size half-open ranges [start, end) of
// at most chunk items and runs fn once per range as independent tasks on a
// bounded pool. It is the batched form of Map for loops whose per-item
// work is too cheap to schedule individually (e.g. Monte Carlo replicas,
// where a task per replica would be dominated by scheduling overhead).
//
// The partition is deterministic — chunk boundaries depend only on n and
// chunk, never on worker count — so callers that key their work on item
// indices (rather than chunk identity) produce identical results at any
// parallelism. chunk < 1 means a single chunk covering everything; n ≤ 0
// is a no-op. stage labels the tasks in progress callbacks.
func MapChunks(ctx context.Context, n, chunk int, opts Options, stage string, fn func(ctx context.Context, start, end int) error) error {
	if n <= 0 {
		return nil
	}
	if chunk < 1 {
		chunk = n
	}
	g := NewGraph()
	for start := 0; start < n; start += chunk {
		start := start
		end := start + chunk
		if end > n {
			end = n
		}
		g.MustAdd(Task{
			ID:    fmt.Sprintf("%s/%d-%d", stage, start, end),
			Stage: stage,
			Run:   func(ctx context.Context) error { return fn(ctx, start, end) },
		})
	}
	return g.Run(ctx, opts)
}
