// Package sched is a bounded, cancellable task-graph scheduler. A study is
// expressed as a directed acyclic graph of named tasks; Run executes it on
// a fixed-size worker pool (default GOMAXPROCS), starting each task the
// moment its dependencies finish rather than barriering whole stages. The
// first task error cancels all outstanding work, panics are recovered into
// errors, and an optional progress callback reports per-stage completion
// counters as the graph drains.
//
// The scheduler adds no synchronisation around task *results*: tasks must
// write to disjoint storage (typically their own slice slot), which also
// guarantees that the output is independent of worker count and scheduling
// order — a property internal/sim's determinism tests pin down.
package sched

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Task is one node of the graph.
type Task struct {
	// ID names the task; it must be unique within a graph.
	ID string
	// Stage groups tasks for progress reporting (e.g. "timing", "base").
	// It has no scheduling meaning: only Deps order execution.
	Stage string
	// Deps lists the IDs of tasks that must complete before this one runs.
	Deps []string
	// Run does the work. It receives a context that is cancelled as soon
	// as any task fails or the caller's context is cancelled; long-running
	// tasks should poll it.
	Run func(ctx context.Context) error
}

// Progress is a snapshot of graph completion, delivered to the callback
// after each task finishes. Counters are consistent with each other but the
// callback may observe them out of completion order under parallelism.
type Progress struct {
	// Task and Stage identify the task that just finished.
	Task, Stage string
	// Err is the task's error, nil on success.
	Err error
	// Done and Total count finished and scheduled tasks graph-wide.
	Done, Total int
	// StageDone and StageTotal count finished and scheduled tasks within
	// the finished task's stage.
	StageDone, StageTotal int
}

// Options configures a Run.
type Options struct {
	// Parallelism bounds the number of concurrently running tasks.
	// Values < 1 default to runtime.GOMAXPROCS(0).
	Parallelism int
	// OnProgress, when non-nil, is invoked after every task completion
	// (including failures). It is called from worker goroutines and must
	// be safe for concurrent use.
	OnProgress func(Progress)
	// Metrics, when non-nil, receives task lifecycle events (queued,
	// started, finished, abandoned). A shared *Counters here gives
	// long-lived observers — rampd's /metrics, the CLIs — a live view of
	// queue depth and in-flight work across every concurrent Run.
	Metrics Recorder
}

// PanicError wraps a panic recovered from a task.
type PanicError struct {
	// Task is the panicking task's ID.
	Task string
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

// Error describes the panic without the stack (retrieve it from the field).
func (e *PanicError) Error() string {
	return fmt.Sprintf("sched: task %s panicked: %v", e.Task, e.Value)
}

// MultiError aggregates the errors of independently failed tasks, ordered
// by task submission order for reproducible messages.
type MultiError struct {
	Errs []error
}

// Error joins the individual messages.
func (e *MultiError) Error() string {
	msgs := make([]string, len(e.Errs))
	for i, err := range e.Errs {
		msgs[i] = err.Error()
	}
	return fmt.Sprintf("sched: %d tasks failed: %s", len(e.Errs), strings.Join(msgs, "; "))
}

// Unwrap exposes the individual errors to errors.Is / errors.As.
func (e *MultiError) Unwrap() []error { return e.Errs }

// Graph accumulates tasks and runs them. The zero value is not usable;
// create with NewGraph. A Graph is single-use: Run may be called once.
type Graph struct {
	tasks []Task
	index map[string]int
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{index: make(map[string]int)}
}

// Add appends a task, rejecting duplicate or empty IDs and nil Run funcs.
// Dependencies may name tasks added later; they are resolved at Run.
func (g *Graph) Add(t Task) error {
	if t.ID == "" {
		return errors.New("sched: task needs an ID")
	}
	if t.Run == nil {
		return fmt.Errorf("sched: task %s has no Run func", t.ID)
	}
	if _, dup := g.index[t.ID]; dup {
		return fmt.Errorf("sched: duplicate task %s", t.ID)
	}
	g.index[t.ID] = len(g.tasks)
	g.tasks = append(g.tasks, t)
	return nil
}

// MustAdd is Add for programmatically generated, known-unique IDs.
func (g *Graph) MustAdd(t Task) {
	if err := g.Add(t); err != nil {
		panic(err)
	}
}

// Len returns the number of tasks added.
func (g *Graph) Len() int { return len(g.tasks) }

// taskErr pairs an error with the failing task's submission index so the
// aggregate error is ordered deterministically.
type taskErr struct {
	idx int
	err error
}

// Run executes the graph and blocks until every task has finished, failed,
// or been abandoned after cancellation. It returns nil on full success; the
// single task error if exactly one task failed; a *MultiError if several
// failed independently; or ctx.Err() if the caller's context was cancelled
// before any task failed. Secondary context.Canceled errors from tasks
// interrupted by the first failure are suppressed.
func (g *Graph) Run(ctx context.Context, opts Options) error {
	n := len(g.tasks)
	if n == 0 {
		return nil
	}
	workers := opts.Parallelism
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	// Resolve dependencies into in-degrees and dependent lists.
	indeg := make([]int, n)
	dependents := make([][]int, n)
	for i := range g.tasks {
		t := &g.tasks[i]
		for _, d := range t.Deps {
			j, ok := g.index[d]
			if !ok {
				return fmt.Errorf("sched: task %s depends on unknown task %q", t.ID, d)
			}
			if j == i {
				return fmt.Errorf("sched: task %s depends on itself", t.ID)
			}
			indeg[i]++
			dependents[j] = append(dependents[j], i)
		}
	}
	if err := checkAcyclic(g.tasks, indeg, dependents); err != nil {
		return err
	}

	stageTotal := make(map[string]int)
	for i := range g.tasks {
		stageTotal[g.tasks[i].Stage]++
	}

	parent := ctx
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// ready is buffered for the whole graph so completing workers never
	// block while enqueueing newly unblocked dependents.
	ready := make(chan int, n)
	var (
		mu        sync.Mutex
		errs      []taskErr
		done      int
		stageDone = make(map[string]int, len(stageTotal))
		// enqueued/started reconcile the Metrics queue gauge after a
		// cancelled run: tasks sent to ready but never picked up are
		// reported as abandoned once the workers drain.
		enqueued, started atomic.Int64
	)
	// Task latencies are only timed when the Recorder opts in via
	// StageObserver, so plain Counters users pay no clock reads; the same
	// holds for ready-time stamps and QueueObserver.
	stageObs, _ := opts.Metrics.(StageObserver)
	queueObs, _ := opts.Metrics.(QueueObserver)
	var readyAt []time.Time
	if queueObs != nil {
		readyAt = make([]time.Time, n)
	}

	enqueue := func(i int) {
		if opts.Metrics != nil {
			enqueued.Add(1)
			opts.Metrics.TaskQueued()
		}
		if readyAt != nil {
			// The channel send below happens-before the worker's receive,
			// so the worker reads the stamp race-free.
			readyAt[i] = time.Now()
		}
		ready <- i
	}
	for i := range g.tasks {
		if indeg[i] == 0 {
			enqueue(i)
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-ctx.Done():
					return
				case i, ok := <-ready:
					if !ok {
						return
					}
					if ctx.Err() != nil {
						return
					}
					t := &g.tasks[i]
					if opts.Metrics != nil {
						started.Add(1)
						opts.Metrics.TaskStarted()
					}
					if queueObs != nil {
						queueObs.TaskQueueWait(t.Stage, time.Since(readyAt[i]))
					}
					var startedAt time.Time
					if stageObs != nil {
						startedAt = time.Now()
					}
					err := runTask(ctx, t)
					if stageObs != nil {
						stageObs.TaskLatency(t.Stage, time.Since(startedAt), err)
					}
					if opts.Metrics != nil {
						opts.Metrics.TaskFinished(err)
					}

					mu.Lock()
					done++
					stageDone[t.Stage]++
					if err != nil {
						errs = append(errs, taskErr{i, err})
					}
					p := Progress{
						Task: t.ID, Stage: t.Stage, Err: err,
						Done: done, Total: n,
						StageDone: stageDone[t.Stage], StageTotal: stageTotal[t.Stage],
					}
					var unblocked []int
					if err == nil {
						for _, d := range dependents[i] {
							indeg[d]--
							if indeg[d] == 0 {
								unblocked = append(unblocked, d)
							}
						}
					}
					finished := done == n
					mu.Unlock()

					if err != nil {
						cancel()
					}
					for _, d := range unblocked {
						enqueue(d)
					}
					if opts.OnProgress != nil {
						opts.OnProgress(p)
					}
					if finished {
						// The final task enqueues nothing, so no sends can
						// follow; closing releases the idle workers.
						close(ready)
					}
				}
			}
		}()
	}
	wg.Wait()
	if opts.Metrics != nil {
		for k := started.Load(); k < enqueued.Load(); k++ {
			opts.Metrics.TaskAbandoned()
		}
	}

	sort.Slice(errs, func(a, b int) bool { return errs[a].idx < errs[b].idx })
	var real []error
	for _, te := range errs {
		if !errors.Is(te.err, context.Canceled) {
			real = append(real, fmt.Errorf("%s: %w", g.tasks[te.idx].ID, te.err))
		}
	}
	switch {
	case len(real) == 1:
		return real[0]
	case len(real) > 1:
		return &MultiError{Errs: real}
	case parent.Err() != nil:
		return parent.Err()
	case len(errs) > 0:
		// Only context.Canceled task errors without external cancellation:
		// surface the first rather than swallowing it.
		return fmt.Errorf("%s: %w", g.tasks[errs[0].idx].ID, errs[0].err)
	default:
		return nil
	}
}

// runTask invokes the task, converting panics to *PanicError.
func runTask(ctx context.Context, t *Task) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Task: t.ID, Value: r, Stack: debug.Stack()}
		}
	}()
	return t.Run(ctx)
}

// checkAcyclic runs Kahn's algorithm on a scratch copy of the in-degrees,
// naming the cycle participants on failure.
func checkAcyclic(tasks []Task, indeg []int, dependents [][]int) error {
	deg := make([]int, len(indeg))
	copy(deg, indeg)
	queue := make([]int, 0, len(tasks))
	for i, d := range deg {
		if d == 0 {
			queue = append(queue, i)
		}
	}
	seen := 0
	for len(queue) > 0 {
		i := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		seen++
		for _, d := range dependents[i] {
			deg[d]--
			if deg[d] == 0 {
				queue = append(queue, d)
			}
		}
	}
	if seen == len(tasks) {
		return nil
	}
	var cyclic []string
	for i, d := range deg {
		if d > 0 {
			cyclic = append(cyclic, tasks[i].ID)
		}
	}
	return fmt.Errorf("sched: dependency cycle through %s", strings.Join(cyclic, ", "))
}

// Map runs fn(ctx, i) for every i in [0, n) as n independent tasks on a
// bounded pool — the degenerate graph for embarrassingly parallel loops.
// stage labels the tasks in progress callbacks.
func Map(ctx context.Context, n int, opts Options, stage string, fn func(ctx context.Context, i int) error) error {
	g := NewGraph()
	for i := 0; i < n; i++ {
		i := i
		g.MustAdd(Task{
			ID:    fmt.Sprintf("%s/%d", stage, i),
			Stage: stage,
			Run:   func(ctx context.Context) error { return fn(ctx, i) },
		})
	}
	return g.Run(ctx, opts)
}
