package sched

import (
	"context"
	"errors"
	"sync"
	"testing"
)

func TestNumChunks(t *testing.T) {
	cases := []struct{ n, chunk, want int }{
		{0, 10, 0}, {-5, 10, 0},
		{1, 10, 1}, {10, 10, 1}, {11, 10, 2}, {100, 10, 10}, {101, 10, 11},
		{7, 0, 1}, {7, -3, 1},
	}
	for _, c := range cases {
		if got := NumChunks(c.n, c.chunk); got != c.want {
			t.Errorf("NumChunks(%d,%d) = %d, want %d", c.n, c.chunk, got, c.want)
		}
	}
}

func TestMapChunksCoversEveryIndexOnce(t *testing.T) {
	for _, tc := range []struct{ n, chunk, par int }{
		{100, 7, 4}, {100, 100, 2}, {100, 1000, 8}, {5, 1, 3}, {64, 16, 1}, {10, 0, 2},
	} {
		hits := make([]int, tc.n)
		var mu sync.Mutex
		err := MapChunks(context.Background(), tc.n, tc.chunk, Options{Parallelism: tc.par}, "chunk",
			func(_ context.Context, start, end int) error {
				if start < 0 || end > tc.n || start >= end {
					t.Errorf("n=%d chunk=%d: bad range [%d,%d)", tc.n, tc.chunk, start, end)
				}
				if tc.chunk >= 1 && end-start > tc.chunk {
					t.Errorf("n=%d chunk=%d: oversized range [%d,%d)", tc.n, tc.chunk, start, end)
				}
				mu.Lock()
				for i := start; i < end; i++ {
					hits[i]++
				}
				mu.Unlock()
				return nil
			})
		if err != nil {
			t.Fatalf("n=%d chunk=%d: %v", tc.n, tc.chunk, err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d chunk=%d: index %d covered %d times", tc.n, tc.chunk, i, h)
			}
		}
	}
}

func TestMapChunksEmptyIsNoop(t *testing.T) {
	called := false
	err := MapChunks(context.Background(), 0, 8, Options{}, "chunk",
		func(context.Context, int, int) error { called = true; return nil })
	if err != nil || called {
		t.Fatalf("err=%v called=%v, want nil/false", err, called)
	}
}

func TestMapChunksPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	err := MapChunks(context.Background(), 100, 10, Options{Parallelism: 4}, "chunk",
		func(_ context.Context, start, _ int) error {
			if start == 50 {
				return boom
			}
			return nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
}

func TestMapChunksCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, 1)
	err := MapChunks(ctx, 1000, 1, Options{Parallelism: 2}, "chunk",
		func(ctx context.Context, start, _ int) error {
			select {
			case started <- struct{}{}:
				cancel()
			default:
			}
			<-ctx.Done()
			return ctx.Err()
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
