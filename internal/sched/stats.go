package sched

import (
	"sync/atomic"
	"time"
)

// Recorder receives task lifecycle events from a running graph. All methods
// are called from worker goroutines and must be safe for concurrent use. A
// single Recorder may be shared by any number of concurrent Runs (rampd
// attaches one to every study it serves), so implementations should treat
// the events as global aggregates, not per-graph state.
type Recorder interface {
	// TaskQueued fires when a task becomes ready (its dependencies are
	// satisfied and it is waiting for a worker).
	TaskQueued()
	// TaskStarted fires when a worker picks the task up and begins Run.
	TaskStarted()
	// TaskFinished fires when the task's Run returns; err is its error.
	TaskFinished(err error)
	// TaskAbandoned fires once per task that was queued but never started
	// because the run was cancelled; it rebalances the queue-depth gauge.
	TaskAbandoned()
}

// StageObserver is an optional Recorder extension: a Recorder that also
// implements it additionally receives each task's wall-clock latency,
// labelled by the task's stage. The scheduler only pays for the clock
// reads when the installed Recorder implements the interface, so plain
// Counters users (which deliberately do not implement it) are unaffected.
type StageObserver interface {
	// TaskLatency fires after a task's Run returns, with the stage label,
	// the task's execution duration, and its error (nil on success). It is
	// called from worker goroutines and must be safe for concurrent use.
	TaskLatency(stage string, d time.Duration, err error)
}

// QueueObserver is an optional Recorder extension: a Recorder that also
// implements it additionally receives each task's queue wait — the time
// between becoming ready and being picked up by a worker — labelled by
// the task's stage. Like StageObserver, the scheduler only pays for the
// ready-time stamps when the installed Recorder implements the
// interface.
type QueueObserver interface {
	// TaskQueueWait fires when a worker picks a task up, with the stage
	// label and how long the task sat ready. It is called from worker
	// goroutines and must be safe for concurrent use.
	TaskQueueWait(stage string, d time.Duration)
}

// Stats is the read side of the scheduler's observability counters: the
// current queue depth and in-flight gauge plus cumulative completion
// counters. Both rampd's /metrics endpoint and the CLIs' progress wiring
// report from this one source.
type Stats interface {
	// QueueDepth is the number of ready tasks waiting for a worker.
	QueueDepth() int64
	// InFlight is the number of tasks currently executing.
	InFlight() int64
	// Completed is the cumulative count of tasks that finished without error.
	Completed() int64
	// Failed is the cumulative count of tasks that finished with an error.
	Failed() int64
}

// Counters is the standard Recorder and Stats implementation: four atomic
// counters with no locks, cheap enough to leave attached permanently. The
// zero value is ready to use; NewCounters exists for symmetry.
type Counters struct {
	queued    atomic.Int64
	inFlight  atomic.Int64
	completed atomic.Int64
	failed    atomic.Int64
}

// NewCounters returns a zeroed counter set.
func NewCounters() *Counters { return &Counters{} }

// TaskQueued implements Recorder.
func (c *Counters) TaskQueued() { c.queued.Add(1) }

// TaskStarted implements Recorder.
func (c *Counters) TaskStarted() {
	c.queued.Add(-1)
	c.inFlight.Add(1)
}

// TaskFinished implements Recorder.
func (c *Counters) TaskFinished(err error) {
	c.inFlight.Add(-1)
	if err != nil {
		c.failed.Add(1)
	} else {
		c.completed.Add(1)
	}
}

// TaskAbandoned implements Recorder.
func (c *Counters) TaskAbandoned() { c.queued.Add(-1) }

// QueueDepth implements Stats.
func (c *Counters) QueueDepth() int64 { return c.queued.Load() }

// InFlight implements Stats.
func (c *Counters) InFlight() int64 { return c.inFlight.Load() }

// Completed implements Stats.
func (c *Counters) Completed() int64 { return c.completed.Load() }

// Failed implements Stats.
func (c *Counters) Failed() int64 { return c.failed.Load() }

// CountersSnapshot is a mutually consistent reading of all four counters.
type CountersSnapshot struct {
	QueueDepth, InFlight, Completed, Failed int64
}

// Snapshot returns a consistent snapshot of the counters. The four values
// are individually atomic but live in separate words, so a naive reader
// can observe a task as simultaneously queued and in flight; Snapshot
// re-reads until two consecutive readings agree (bounded retries), which
// yields a stable point-in-time view whenever the counters quiesce for a
// single read cycle. Under heavy churn the last reading is returned —
// still a set of individually valid values.
func (c *Counters) Snapshot() CountersSnapshot {
	read := func() CountersSnapshot {
		return CountersSnapshot{
			QueueDepth: c.queued.Load(),
			InFlight:   c.inFlight.Load(),
			Completed:  c.completed.Load(),
			Failed:     c.failed.Load(),
		}
	}
	prev := read()
	for i := 0; i < 4; i++ {
		cur := read()
		if cur == prev {
			return cur
		}
		prev = cur
	}
	return prev
}

var (
	_ Recorder = (*Counters)(nil)
	_ Stats    = (*Counters)(nil)
)
