package sched

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunRespectsDependencies(t *testing.T) {
	g := NewGraph()
	var mu sync.Mutex
	order := make(map[string]int)
	seq := 0
	record := func(id string) func(context.Context) error {
		return func(context.Context) error {
			mu.Lock()
			defer mu.Unlock()
			seq++
			order[id] = seq
			return nil
		}
	}
	mustAdd(t, g, Task{ID: "c", Deps: []string{"a", "b"}, Run: record("c")})
	mustAdd(t, g, Task{ID: "a", Run: record("a")})
	mustAdd(t, g, Task{ID: "b", Deps: []string{"a"}, Run: record("b")})
	mustAdd(t, g, Task{ID: "d", Deps: []string{"c"}, Run: record("d")})
	if err := g.Run(context.Background(), Options{Parallelism: 4}); err != nil {
		t.Fatal(err)
	}
	if !(order["a"] < order["b"] && order["b"] < order["c"] && order["c"] < order["d"]) {
		t.Fatalf("dependency order violated: %v", order)
	}
}

func TestRunBoundsParallelism(t *testing.T) {
	const limit = 3
	g := NewGraph()
	var cur, peak atomic.Int64
	for i := 0; i < 24; i++ {
		mustAdd(t, g, Task{ID: fmt.Sprintf("t%d", i), Run: func(context.Context) error {
			n := cur.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			cur.Add(-1)
			return nil
		}})
	}
	if err := g.Run(context.Background(), Options{Parallelism: limit}); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > limit {
		t.Fatalf("observed %d concurrent tasks, limit %d", p, limit)
	}
}

func TestRunFirstErrorCancelsRest(t *testing.T) {
	g := NewGraph()
	boom := errors.New("boom")
	var ran atomic.Int64
	mustAdd(t, g, Task{ID: "fail", Run: func(context.Context) error { return boom }})
	mustAdd(t, g, Task{ID: "after", Deps: []string{"fail"}, Run: func(context.Context) error {
		ran.Add(1)
		return nil
	}})
	err := g.Run(context.Background(), Options{Parallelism: 1})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want wrapped boom", err)
	}
	if ran.Load() != 0 {
		t.Fatal("dependent of a failed task ran")
	}
}

func TestRunErrorCancelsInFlightTasks(t *testing.T) {
	g := NewGraph()
	boom := errors.New("boom")
	started := make(chan struct{})
	sawCancel := make(chan struct{}, 1)
	mustAdd(t, g, Task{ID: "slow", Run: func(ctx context.Context) error {
		close(started)
		select {
		case <-ctx.Done():
			sawCancel <- struct{}{}
			return ctx.Err()
		case <-time.After(5 * time.Second):
			return errors.New("never cancelled")
		}
	}})
	mustAdd(t, g, Task{ID: "fail", Run: func(context.Context) error {
		<-started
		return boom
	}})
	err := g.Run(context.Background(), Options{Parallelism: 2})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want boom", err)
	}
	select {
	case <-sawCancel:
	default:
		t.Fatal("in-flight task did not observe cancellation")
	}
}

func TestRunAggregatesIndependentErrors(t *testing.T) {
	g := NewGraph()
	e1, e2 := errors.New("first"), errors.New("second")
	var gate sync.WaitGroup
	gate.Add(2)
	failAfterBoth := func(e error) func(context.Context) error {
		return func(context.Context) error {
			// Both tasks pass the gate before either returns, so both
			// errors are recorded regardless of scheduling.
			gate.Done()
			gate.Wait()
			return e
		}
	}
	mustAdd(t, g, Task{ID: "a", Run: failAfterBoth(e1)})
	mustAdd(t, g, Task{ID: "b", Run: failAfterBoth(e2)})
	err := g.Run(context.Background(), Options{Parallelism: 2})
	var multi *MultiError
	if !errors.As(err, &multi) {
		t.Fatalf("got %T (%v), want *MultiError", err, err)
	}
	if len(multi.Errs) != 2 {
		t.Fatalf("aggregated %d errors, want 2", len(multi.Errs))
	}
	if !errors.Is(err, e1) || !errors.Is(err, e2) {
		t.Fatalf("MultiError does not unwrap to both causes: %v", err)
	}
	// Submission order, not completion order.
	if !errors.Is(multi.Errs[0], e1) || !errors.Is(multi.Errs[1], e2) {
		t.Fatalf("errors not in submission order: %v", multi.Errs)
	}
}

func TestRunRecoversPanics(t *testing.T) {
	g := NewGraph()
	mustAdd(t, g, Task{ID: "explode", Run: func(context.Context) error {
		panic("kaboom")
	}})
	err := g.Run(context.Background(), Options{Parallelism: 2})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("got %T (%v), want *PanicError", err, err)
	}
	if pe.Task != "explode" || pe.Value != "kaboom" || len(pe.Stack) == 0 {
		t.Fatalf("panic details lost: %+v", pe)
	}
}

func TestRunContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	g := NewGraph()
	release := make(chan struct{})
	mustAdd(t, g, Task{ID: "first", Run: func(context.Context) error {
		cancel()
		close(release)
		return nil
	}})
	for i := 0; i < 8; i++ {
		mustAdd(t, g, Task{ID: fmt.Sprintf("later%d", i), Deps: []string{"first"},
			Run: func(context.Context) error {
				<-release
				return nil
			}})
	}
	err := g.Run(ctx, Options{Parallelism: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

func TestRunRejectsBadGraphs(t *testing.T) {
	g := NewGraph()
	if err := g.Add(Task{ID: "", Run: func(context.Context) error { return nil }}); err == nil {
		t.Error("empty ID accepted")
	}
	if err := g.Add(Task{ID: "norun"}); err == nil {
		t.Error("nil Run accepted")
	}
	mustAdd(t, g, Task{ID: "a", Run: func(context.Context) error { return nil }})
	if err := g.Add(Task{ID: "a", Run: func(context.Context) error { return nil }}); err == nil {
		t.Error("duplicate ID accepted")
	}

	g2 := NewGraph()
	mustAdd(t, g2, Task{ID: "x", Deps: []string{"ghost"}, Run: func(context.Context) error { return nil }})
	if err := g2.Run(context.Background(), Options{}); err == nil {
		t.Error("unknown dependency accepted")
	}

	g3 := NewGraph()
	mustAdd(t, g3, Task{ID: "x", Deps: []string{"y"}, Run: func(context.Context) error { return nil }})
	mustAdd(t, g3, Task{ID: "y", Deps: []string{"x"}, Run: func(context.Context) error { return nil }})
	if err := g3.Run(context.Background(), Options{}); err == nil {
		t.Error("dependency cycle accepted")
	}

	g4 := NewGraph()
	mustAdd(t, g4, Task{ID: "x", Deps: []string{"x"}, Run: func(context.Context) error { return nil }})
	if err := g4.Run(context.Background(), Options{}); err == nil {
		t.Error("self-dependency accepted")
	}
}

func TestRunEmptyGraph(t *testing.T) {
	if err := NewGraph().Run(context.Background(), Options{}); err != nil {
		t.Fatal(err)
	}
}

func TestRunProgressCounters(t *testing.T) {
	g := NewGraph()
	const perStage = 5
	for i := 0; i < perStage; i++ {
		id := fmt.Sprintf("load%d", i)
		mustAdd(t, g, Task{ID: id, Stage: "load", Run: func(context.Context) error { return nil }})
		mustAdd(t, g, Task{ID: fmt.Sprintf("eval%d", i), Stage: "eval", Deps: []string{id},
			Run: func(context.Context) error { return nil }})
	}
	var mu sync.Mutex
	var events []Progress
	err := g.Run(context.Background(), Options{
		Parallelism: 4,
		OnProgress: func(p Progress) {
			mu.Lock()
			events = append(events, p)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2*perStage {
		t.Fatalf("got %d progress events, want %d", len(events), 2*perStage)
	}
	maxDone := 0
	stageMax := map[string]int{}
	for _, p := range events {
		if p.Total != 2*perStage {
			t.Fatalf("Total = %d, want %d", p.Total, 2*perStage)
		}
		if p.StageTotal != perStage {
			t.Fatalf("StageTotal = %d, want %d", p.StageTotal, perStage)
		}
		if p.Done > maxDone {
			maxDone = p.Done
		}
		if p.StageDone > stageMax[p.Stage] {
			stageMax[p.Stage] = p.StageDone
		}
	}
	if maxDone != 2*perStage || stageMax["load"] != perStage || stageMax["eval"] != perStage {
		t.Fatalf("counters never reached totals: done %d, stages %v", maxDone, stageMax)
	}
}

func TestMap(t *testing.T) {
	var sum atomic.Int64
	err := Map(context.Background(), 100, Options{Parallelism: 8}, "add",
		func(_ context.Context, i int) error {
			sum.Add(int64(i))
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 4950 {
		t.Fatalf("sum = %d, want 4950", sum.Load())
	}
	boom := errors.New("boom")
	err = Map(context.Background(), 4, Options{Parallelism: 1}, "fail",
		func(_ context.Context, i int) error {
			if i == 2 {
				return boom
			}
			return nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want boom", err)
	}
}

func mustAdd(t *testing.T, g *Graph, task Task) {
	t.Helper()
	if err := g.Add(task); err != nil {
		t.Fatal(err)
	}
}
