package sched

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestCountersLifecycle checks that a successful run settles the gauges to
// zero and the cumulative counters to the task count.
func TestCountersLifecycle(t *testing.T) {
	c := NewCounters()
	g := NewGraph()
	const n = 8
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("t%d", i)
		var deps []string
		if i > 0 {
			deps = []string{fmt.Sprintf("t%d", i-1)}
		}
		g.MustAdd(Task{ID: id, Deps: deps, Run: func(context.Context) error { return nil }})
	}
	if err := g.Run(context.Background(), Options{Parallelism: 3, Metrics: c}); err != nil {
		t.Fatal(err)
	}
	if got := c.QueueDepth(); got != 0 {
		t.Errorf("queue depth after run = %d, want 0", got)
	}
	if got := c.InFlight(); got != 0 {
		t.Errorf("in-flight after run = %d, want 0", got)
	}
	if got := c.Completed(); got != n {
		t.Errorf("completed = %d, want %d", got, n)
	}
	if got := c.Failed(); got != 0 {
		t.Errorf("failed = %d, want 0", got)
	}
}

// TestCountersFailureAndAbandonment checks that a failing graph counts the
// failure and rebalances the queue gauge for tasks that never ran.
func TestCountersFailureAndAbandonment(t *testing.T) {
	c := NewCounters()
	g := NewGraph()
	boom := errors.New("boom")
	g.MustAdd(Task{ID: "fail", Run: func(context.Context) error { return boom }})
	// A long dependent chain behind the failure: never started.
	for i := 0; i < 5; i++ {
		id := fmt.Sprintf("after%d", i)
		dep := "fail"
		if i > 0 {
			dep = fmt.Sprintf("after%d", i-1)
		}
		g.MustAdd(Task{ID: id, Deps: []string{dep}, Run: func(context.Context) error { return nil }})
	}
	if err := g.Run(context.Background(), Options{Parallelism: 2, Metrics: c}); !errors.Is(err, boom) {
		t.Fatalf("Run error = %v, want %v", err, boom)
	}
	if got := c.Failed(); got != 1 {
		t.Errorf("failed = %d, want 1", got)
	}
	if got := c.QueueDepth(); got != 0 {
		t.Errorf("queue depth after failed run = %d, want 0", got)
	}
	if got := c.InFlight(); got != 0 {
		t.Errorf("in-flight after failed run = %d, want 0", got)
	}
}

// TestCountersSharedAcrossRuns runs several graphs concurrently against one
// Counters (the rampd usage pattern) and checks the aggregate.
func TestCountersSharedAcrossRuns(t *testing.T) {
	c := NewCounters()
	const runs, tasks = 6, 10
	var wg sync.WaitGroup
	for r := 0; r < runs; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := Map(context.Background(), tasks, Options{Parallelism: 2, Metrics: c}, "stage",
				func(context.Context, int) error { return nil })
			if err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if got := c.Completed(); got != runs*tasks {
		t.Errorf("completed = %d, want %d", got, runs*tasks)
	}
	if got := c.QueueDepth() + c.InFlight(); got != 0 {
		t.Errorf("gauges after all runs = %d, want 0", got)
	}
}

// queueWaitRecorder is a Counters that also implements QueueObserver,
// the shape rampd installs.
type queueWaitRecorder struct {
	*Counters
	mu    sync.Mutex
	waits map[string][]time.Duration
}

func (q *queueWaitRecorder) TaskQueueWait(stage string, d time.Duration) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.waits == nil {
		q.waits = make(map[string][]time.Duration)
	}
	q.waits[stage] = append(q.waits[stage], d)
}

// TestQueueWaitObserved: a Recorder implementing QueueObserver receives
// one non-negative queue wait per executed task, labelled by stage; plain
// Counters (which deliberately does not implement it) still works, which
// TestCountersLifecycle already covers.
func TestQueueWaitObserved(t *testing.T) {
	rec := &queueWaitRecorder{Counters: NewCounters()}
	const tasks = 12
	err := Map(context.Background(), tasks, Options{Parallelism: 3, Metrics: rec}, "fit",
		func(context.Context, int) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if got := len(rec.waits["fit"]); got != tasks {
		t.Fatalf("queue waits for stage fit = %d, want %d (map %v)", got, tasks, rec.waits)
	}
	for _, d := range rec.waits["fit"] {
		if d < 0 {
			t.Fatalf("negative queue wait %v", d)
		}
	}
}
