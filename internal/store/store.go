// Package store is a content-addressed artifact cache for the staged
// simulation pipeline. Artifacts are keyed by the hex SHA-256 of the
// canonical encoding of everything that produced them (internal/sim's
// per-stage keys), so a hit is — by construction — the exact output of the
// requested computation and no validation beyond the key is needed.
//
// A Store keeps decoded artifacts in a bounded in-memory LRU and can
// optionally spill the encoded form to a directory, so a cold process (or
// a CLI run) restarts with a warm cache. Disk I/O failures degrade to
// cache misses: the store never fails a lookup or an insert because the
// spill tier is unhealthy, it only counts the error.
package store

import (
	"container/list"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// Options bounds a Store.
type Options struct {
	// MaxEntries bounds the in-memory LRU (default 256, minimum 1).
	MaxEntries int
	// Dir, when non-empty, enables the disk spill tier rooted there. Each
	// store writes under Dir/<name>/. The directory is created on demand.
	Dir string
	// Observer, when non-nil, receives one Event per store operation
	// (lookups with their outcome, inserts, evictions, disk spills). It is
	// called without the store lock held, from whatever goroutine performed
	// the operation, and must be safe for concurrent use.
	Observer func(Event)
}

// Event operation and outcome labels.
const (
	// OpGet is a lookup; outcomes OutcomeHitMem / OutcomeHitDisk /
	// OutcomeMiss.
	OpGet = "get"
	// OpPut is an insert; outcome OutcomeOK.
	OpPut = "put"
	// OpEvict is an LRU eviction; outcome OutcomeOK.
	OpEvict = "evict"
	// OpSpill is a disk-tier write; outcomes OutcomeOK / OutcomeError.
	OpSpill = "spill"

	OutcomeHitMem  = "hit_mem"
	OutcomeHitDisk = "hit_disk"
	OutcomeMiss    = "miss"
	OutcomeOK      = "ok"
	OutcomeError   = "error"
)

// Event describes one completed store operation for observability hooks.
type Event struct {
	// Store is the store's name (its stage, for the stage cache).
	Store string
	// Op is one of the Op* constants.
	Op string
	// Outcome is one of the Outcome* constants.
	Outcome string
}

// Codec serialises artifacts for the disk tier.
type Codec[T any] struct {
	Encode func(T) ([]byte, error)
	Decode func([]byte) (T, error)
}

// JSONCodec returns the default JSON artifact codec.
func JSONCodec[T any]() Codec[T] {
	return Codec[T]{
		Encode: func(v T) ([]byte, error) { return json.Marshal(v) },
		Decode: func(b []byte) (T, error) {
			var v T
			err := json.Unmarshal(b, &v)
			return v, err
		},
	}
}

// Stats is a consistent snapshot of a store's counters. MemHits and
// DiskHits partition successful lookups; a disk hit re-admits the decoded
// artifact to the memory tier.
type Stats struct {
	Entries                     int
	MemHits, DiskHits, Misses   int64
	Puts, Evicted, DiskFailures int64
}

// Store is one artifact kind's cache. Create with New; the zero value is
// not usable. All methods are safe for concurrent use.
//
// Values are shared between the cache and its callers: treat artifacts as
// immutable after Put.
type Store[T any] struct {
	mu      sync.Mutex
	name    string
	max     int
	ll      *list.List // front = most recently used
	items   map[string]*list.Element
	dir     string // "" = memory only
	codec   Codec[T]
	stats   Stats
	observe func(Event) // nil = no observer
}

// event emits an operation event to the observer, if any. Never called
// with s.mu held.
func (s *Store[T]) event(op, outcome string) {
	if s.observe != nil {
		s.observe(Event{Store: s.name, Op: op, Outcome: outcome})
	}
}

// entry is one resident artifact.
type entry[T any] struct {
	key string
	val T
}

// New returns a store named name (its subdirectory under Options.Dir).
// codec may be zero-valued when no spill directory is configured.
func New[T any](name string, opts Options, codec Codec[T]) (*Store[T], error) {
	if name == "" {
		return nil, fmt.Errorf("store: empty store name")
	}
	max := opts.MaxEntries
	if max <= 0 {
		max = 256
	}
	s := &Store[T]{
		name:    name,
		max:     max,
		ll:      list.New(),
		items:   make(map[string]*list.Element),
		codec:   codec,
		observe: opts.Observer,
	}
	if opts.Dir != "" {
		if codec.Encode == nil || codec.Decode == nil {
			return nil, fmt.Errorf("store %s: disk spill requires a codec", name)
		}
		dir := filepath.Join(opts.Dir, name)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("store %s: %w", name, err)
		}
		s.dir = dir
	}
	return s, nil
}

// validKey rejects keys that could escape the spill directory; stage keys
// are hex SHA-256 digests, so anything else indicates a caller bug.
func validKey(key string) bool {
	if len(key) < 16 {
		return false
	}
	for _, c := range key {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Get returns the artifact for key, consulting the memory tier then the
// disk tier. A disk hit decodes the artifact and promotes it to memory.
func (s *Store[T]) Get(key string) (T, bool) {
	var zero T
	if !validKey(key) {
		return zero, false
	}
	s.mu.Lock()
	if el, ok := s.items[key]; ok {
		s.ll.MoveToFront(el)
		s.stats.MemHits++
		v := el.Value.(*entry[T]).val
		s.mu.Unlock()
		s.event(OpGet, OutcomeHitMem)
		return v, true
	}
	dir := s.dir
	s.mu.Unlock()

	if dir != "" {
		// Disk read outside the lock: decoding can be slow and must not
		// serialise unrelated lookups.
		if b, err := os.ReadFile(s.path(key)); err == nil {
			if v, err := s.codec.Decode(b); err == nil {
				s.mu.Lock()
				s.stats.DiskHits++
				evicted := s.admitLocked(key, v)
				s.mu.Unlock()
				s.event(OpGet, OutcomeHitDisk)
				for ; evicted > 0; evicted-- {
					s.event(OpEvict, OutcomeOK)
				}
				return v, true
			}
			s.noteDiskFailure()
		}
	}
	s.mu.Lock()
	s.stats.Misses++
	s.mu.Unlock()
	s.event(OpGet, OutcomeMiss)
	return zero, false
}

// Contains reports whether key is resident in memory or present on disk,
// without decoding or promoting anything and without touching the hit/miss
// counters. Planning code uses it to decide whether an upstream stage can
// be skipped; because an entry can be evicted between Contains and Get,
// callers must still handle a subsequent miss.
func (s *Store[T]) Contains(key string) bool {
	if !validKey(key) {
		return false
	}
	s.mu.Lock()
	_, ok := s.items[key]
	dir := s.dir
	s.mu.Unlock()
	if ok {
		return true
	}
	if dir == "" {
		return false
	}
	_, err := os.Stat(s.path(key))
	return err == nil
}

// PutInfo reports what one Put did beyond the memory-tier insert, so
// callers can annotate their own telemetry (the stage cache marks its
// store.put spans "spilled").
type PutInfo struct {
	// Spilled is true when the encoded artifact was written to the disk
	// tier.
	Spilled bool
	// Evicted is the number of memory-tier entries displaced.
	Evicted int
}

// Put stores the artifact under key in the memory tier and, when spill is
// configured, writes the encoded form to disk (atomically, via a temp file
// rename). Re-putting an existing key refreshes its LRU position.
func (s *Store[T]) Put(key string, v T) PutInfo {
	if !validKey(key) {
		return PutInfo{}
	}
	s.mu.Lock()
	s.stats.Puts++
	evicted := s.admitLocked(key, v)
	dir := s.dir
	s.mu.Unlock()
	s.event(OpPut, OutcomeOK)
	info := PutInfo{Evicted: evicted}
	for ; evicted > 0; evicted-- {
		s.event(OpEvict, OutcomeOK)
	}

	if dir == "" {
		return info
	}
	b, err := s.codec.Encode(v)
	if err != nil {
		s.noteDiskFailure()
		s.event(OpSpill, OutcomeError)
		return info
	}
	path := s.path(key)
	tmp, err := os.CreateTemp(dir, ".tmp-"+key[:8]+"-*")
	if err != nil {
		s.noteDiskFailure()
		s.event(OpSpill, OutcomeError)
		return info
	}
	_, werr := tmp.Write(b)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		s.noteDiskFailure()
		s.event(OpSpill, OutcomeError)
		return info
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		s.noteDiskFailure()
		s.event(OpSpill, OutcomeError)
		return info
	}
	s.event(OpSpill, OutcomeOK)
	info.Spilled = true
	return info
}

// admitLocked inserts or refreshes a memory-tier entry, returning the
// number of entries evicted to stay within the bound; caller holds s.mu.
func (s *Store[T]) admitLocked(key string, v T) int {
	if el, ok := s.items[key]; ok {
		el.Value.(*entry[T]).val = v
		s.ll.MoveToFront(el)
		return 0
	}
	s.items[key] = s.ll.PushFront(&entry[T]{key: key, val: v})
	evicted := 0
	for s.ll.Len() > s.max {
		oldest := s.ll.Back()
		if oldest == nil {
			break
		}
		delete(s.items, oldest.Value.(*entry[T]).key)
		s.ll.Remove(oldest)
		s.stats.Evicted++
		evicted++
	}
	return evicted
}

// path maps a key to its spill file.
func (s *Store[T]) path(key string) string {
	return filepath.Join(s.dir, key+".json")
}

func (s *Store[T]) noteDiskFailure() {
	s.mu.Lock()
	s.stats.DiskFailures++
	s.mu.Unlock()
}

// Len returns the memory-tier entry count.
func (s *Store[T]) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ll.Len()
}

// Stats returns a snapshot of the counters.
func (s *Store[T]) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Entries = s.ll.Len()
	return st
}
