package store

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

type artifact struct {
	Name string    `json:"name"`
	Vals []float64 `json:"vals"`
}

func key(i int) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("key-%d", i)))
	return hex.EncodeToString(sum[:])
}

func TestStoreMemoryRoundTrip(t *testing.T) {
	s, err := New[artifact]("t", Options{MaxEntries: 4}, JSONCodec[artifact]())
	if err != nil {
		t.Fatal(err)
	}
	want := artifact{Name: "a", Vals: []float64{1, 2.5}}
	s.Put(key(1), want)
	got, ok := s.Get(key(1))
	if !ok || got.Name != "a" || len(got.Vals) != 2 {
		t.Fatalf("get = %+v, %v", got, ok)
	}
	if _, ok := s.Get(key(2)); ok {
		t.Fatal("phantom hit")
	}
	st := s.Stats()
	if st.MemHits != 1 || st.Misses != 1 || st.Puts != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestStoreLRUEviction(t *testing.T) {
	s, err := New[int]("t", Options{MaxEntries: 2}, JSONCodec[int]())
	if err != nil {
		t.Fatal(err)
	}
	s.Put(key(1), 1)
	s.Put(key(2), 2)
	if _, ok := s.Get(key(1)); !ok { // promote 1; 2 becomes LRU
		t.Fatal("missing 1")
	}
	s.Put(key(3), 3)
	if _, ok := s.Get(key(2)); ok {
		t.Fatal("2 should have been evicted")
	}
	if _, ok := s.Get(key(1)); !ok {
		t.Fatal("1 should have survived")
	}
	if st := s.Stats(); st.Evicted != 1 || st.Entries != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestStoreRejectsBadKeys(t *testing.T) {
	s, err := New[int]("t", Options{}, Codec[int]{})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"", "short", "../../../../etc/passwd", "ZZZZZZZZZZZZZZZZZZ"} {
		s.Put(k, 1)
		if _, ok := s.Get(k); ok {
			t.Fatalf("bad key %q accepted", k)
		}
		if s.Contains(k) {
			t.Fatalf("bad key %q contained", k)
		}
	}
	if s.Len() != 0 {
		t.Fatal("bad keys stored")
	}
}

func TestStoreDiskSpill(t *testing.T) {
	dir := t.TempDir()
	s, err := New[artifact]("thermal", Options{MaxEntries: 1, Dir: dir}, JSONCodec[artifact]())
	if err != nil {
		t.Fatal(err)
	}
	s.Put(key(1), artifact{Name: "one"})
	s.Put(key(2), artifact{Name: "two"}) // evicts 1 from memory; disk keeps it
	if got, ok := s.Get(key(1)); !ok || got.Name != "one" {
		t.Fatalf("disk tier lost key 1: %+v, %v", got, ok)
	}
	if st := s.Stats(); st.DiskHits != 1 {
		t.Fatalf("stats = %+v", st)
	}

	// A fresh store over the same directory starts warm.
	s2, err := New[artifact]("thermal", Options{MaxEntries: 4, Dir: dir}, JSONCodec[artifact]())
	if err != nil {
		t.Fatal(err)
	}
	if !s2.Contains(key(2)) {
		t.Fatal("fresh store does not see spilled artifact")
	}
	if got, ok := s2.Get(key(2)); !ok || got.Name != "two" {
		t.Fatalf("fresh store get = %+v, %v", got, ok)
	}

	// No temp files left behind.
	matches, _ := filepath.Glob(filepath.Join(dir, "thermal", ".tmp-*"))
	if len(matches) != 0 {
		t.Fatalf("leftover temp files: %v", matches)
	}
}

func TestStoreDiskCorruptionDegradesToMiss(t *testing.T) {
	dir := t.TempDir()
	s, err := New[artifact]("x", Options{MaxEntries: 1, Dir: dir}, JSONCodec[artifact]())
	if err != nil {
		t.Fatal(err)
	}
	s.Put(key(1), artifact{Name: "one"})
	s.Put(key(2), artifact{Name: "two"}) // push 1 to disk only
	if err := os.WriteFile(filepath.Join(dir, "x", key(1)+".json"), []byte("{garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(key(1)); ok {
		t.Fatal("corrupt artifact served")
	}
	if st := s.Stats(); st.DiskFailures != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestStoreConcurrent(t *testing.T) {
	s, err := New[int]("t", Options{MaxEntries: 8, Dir: t.TempDir()}, JSONCodec[int]())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := key(i % 16)
				s.Put(k, i)
				if v, ok := s.Get(k); ok && v < 0 {
					t.Error("impossible value")
				}
				s.Contains(k)
			}
		}(g)
	}
	wg.Wait()
}

func TestStoreNeedsNameAndCodecForSpill(t *testing.T) {
	if _, err := New[int]("", Options{}, JSONCodec[int]()); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := New[int]("x", Options{Dir: t.TempDir()}, Codec[int]{}); err == nil {
		t.Fatal("spill without codec accepted")
	}
}

// eventLog is a concurrency-safe Observer recording events by label.
type eventLog struct {
	mu     sync.Mutex
	counts map[string]int
}

func (l *eventLog) observe(ev Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.counts == nil {
		l.counts = make(map[string]int)
	}
	l.counts[ev.Store+"/"+ev.Op+"/"+ev.Outcome]++
}

func (l *eventLog) get(label string) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.counts[label]
}

// TestStoreObserverEvents pins the observer contract: one event per
// operation, with outcomes distinguishing the memory tier, the disk tier,
// misses, evictions, and spills.
func TestStoreObserverEvents(t *testing.T) {
	dir := t.TempDir()
	log := &eventLog{}
	s, err := New[artifact]("tstage", Options{MaxEntries: 2, Dir: dir, Observer: log.observe}, JSONCodec[artifact]())
	if err != nil {
		t.Fatal(err)
	}

	s.Put(key(1), artifact{Name: "a"})
	s.Put(key(2), artifact{Name: "b"})
	s.Put(key(3), artifact{Name: "c"}) // evicts key(1) from memory
	if _, ok := s.Get(key(3)); !ok {
		t.Fatal("expected mem hit")
	}
	if _, ok := s.Get(key(1)); !ok { // disk promote, evicts again
		t.Fatal("expected disk hit")
	}
	if _, ok := s.Get(key(9)); ok {
		t.Fatal("phantom hit")
	}
	for label, want := range map[string]int{
		"tstage/put/ok":       3,
		"tstage/spill/ok":     3,
		"tstage/get/hit_mem":  1,
		"tstage/get/hit_disk": 1,
		"tstage/get/miss":     1,
		"tstage/evict/ok":     2,
	} {
		if got := log.get(label); got != want {
			t.Errorf("%s = %d, want %d (all: %v)", label, got, want, log.counts)
		}
	}

	// Spill failures surface as spill/error without failing the Put.
	if err := os.RemoveAll(filepath.Join(dir, "tstage")); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "tstage"), []byte("not a dir"), 0o644); err != nil {
		t.Fatal(err)
	}
	s.Put(key(4), artifact{Name: "d"})
	if got := log.get("tstage/spill/error"); got != 1 {
		t.Errorf("spill/error = %d, want 1", got)
	}
	if got := log.get("tstage/put/ok"); got != 4 {
		t.Errorf("put/ok after failed spill = %d, want 4", got)
	}
}
