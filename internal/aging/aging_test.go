package aging

import (
	"math"
	"testing"
	"testing/quick"
)

func singlePhase(fit float64) Schedule {
	return Schedule{Phases: []Phase{{Name: "steady", HoursPerDay: 24, FIT: fit}}}
}

func TestScheduleValidate(t *testing.T) {
	if err := singlePhase(4000).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Schedule{
		{},
		{Phases: []Phase{{Name: "", HoursPerDay: 24, FIT: 1}}},
		{Phases: []Phase{{Name: "x", HoursPerDay: -1, FIT: 1}, {Name: "y", HoursPerDay: 25, FIT: 1}}},
		{Phases: []Phase{{Name: "x", HoursPerDay: 24, FIT: -5}}},
		{Phases: []Phase{{Name: "x", HoursPerDay: 12, FIT: 1}}},                                       // 12h day
		{Phases: []Phase{{Name: "x", HoursPerDay: 20, FIT: 1}, {Name: "y", HoursPerDay: 20, FIT: 1}}}, // 40h day
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad schedule %d accepted", i)
		}
	}
}

func TestSinglePhaseMatchesSOFRMTTF(t *testing.T) {
	// A constant 24h/day schedule must reproduce the SOFR MTTF exactly.
	f := func(fitRaw float64) bool {
		fit := 100 + math.Mod(math.Abs(fitRaw), 1e6)
		proj, err := Project(singlePhase(fit))
		if err != nil {
			return false
		}
		return math.Abs(proj.LifetimeYears/MTTFYears(fit)-1) < 1e-9 &&
			math.Abs(proj.EffectiveFIT/fit-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDutyWeightedAverage(t *testing.T) {
	// 8 hours at 9000 FIT + 16 hours at 1500 FIT → 4000 FIT effective.
	s := Schedule{Phases: []Phase{
		{Name: "busy", HoursPerDay: 8, FIT: 9000},
		{Name: "idle", HoursPerDay: 16, FIT: 1500},
	}}
	proj, err := Project(s)
	if err != nil {
		t.Fatal(err)
	}
	want := (8*9000 + 16*1500) / 24.0
	if math.Abs(proj.EffectiveFIT-want) > 1e-9 {
		t.Fatalf("effective FIT = %v, want %v", proj.EffectiveFIT, want)
	}
	if math.Abs(proj.LifetimeYears-MTTFYears(want)) > 1e-9 {
		t.Fatalf("lifetime = %v years, want %v", proj.LifetimeYears, MTTFYears(want))
	}
	// Damage shares: busy contributes 72000/96000 = 75%.
	if math.Abs(proj.DamageShare["busy"]-0.75) > 1e-12 {
		t.Fatalf("busy damage share = %v, want 0.75", proj.DamageShare["busy"])
	}
	if math.Abs(proj.DamageShare["idle"]-0.25) > 1e-12 {
		t.Fatalf("idle damage share = %v, want 0.25", proj.DamageShare["idle"])
	}
}

func TestDamageSharesSumToOne(t *testing.T) {
	f := func(a, b, c float64) bool {
		fits := []float64{math.Abs(a), math.Abs(b), math.Abs(c)}
		var nonZero bool
		for i := range fits {
			fits[i] = math.Mod(fits[i], 1e5)
			if fits[i] > 0 {
				nonZero = true
			}
		}
		if !nonZero {
			return true
		}
		s := Schedule{Phases: []Phase{
			{Name: "a", HoursPerDay: 6, FIT: fits[0]},
			{Name: "b", HoursPerDay: 10, FIT: fits[1]},
			{Name: "c", HoursPerDay: 8, FIT: fits[2]},
		}}
		proj, err := Project(s)
		if err != nil {
			return false
		}
		var sum float64
		for _, v := range proj.DamageShare {
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAllZeroFITRejected(t *testing.T) {
	if _, err := Project(singlePhase(0)); err == nil {
		t.Fatal("all-zero schedule accepted")
	}
}

func TestRepeatedPhaseNamesAggregate(t *testing.T) {
	s := Schedule{Phases: []Phase{
		{Name: "work", HoursPerDay: 4, FIT: 6000},
		{Name: "rest", HoursPerDay: 16, FIT: 0},
		{Name: "work", HoursPerDay: 4, FIT: 6000},
	}}
	proj, err := Project(s)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(proj.DamageShare["work"]-1.0) > 1e-12 {
		t.Fatalf("aggregated work share = %v, want 1", proj.DamageShare["work"])
	}
}

func TestWhatIfRanksHottestPhaseFirst(t *testing.T) {
	s := Schedule{Phases: []Phase{
		{Name: "render", HoursPerDay: 6, FIT: 20000},
		{Name: "office", HoursPerDay: 10, FIT: 4000},
		{Name: "sleep", HoursPerDay: 8, FIT: 500},
	}}
	results, err := WhatIf(s, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}
	if results[0].Phase != "render" {
		t.Fatalf("top mitigation target = %s, want render", results[0].Phase)
	}
	for i := 1; i < len(results); i++ {
		if results[i].GainYears > results[i-1].GainYears {
			t.Fatal("what-if results not sorted by gain")
		}
	}
	base, err := Project(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.GainYears < 0 || r.LifetimeYears < base.LifetimeYears {
			t.Fatalf("halving a phase's rate cannot shorten life: %+v", r)
		}
	}
}

func TestWhatIfRejectsNegativeFactor(t *testing.T) {
	if _, err := WhatIf(singlePhase(4000), -1); err == nil {
		t.Fatal("negative factor accepted")
	}
}

func TestWhatIfFactorOneIsNeutral(t *testing.T) {
	s := singlePhase(4000)
	results, err := WhatIf(s, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(results[0].GainYears) > 1e-9 {
		t.Fatalf("factor 1 changed lifetime by %v years", results[0].GainYears)
	}
}
