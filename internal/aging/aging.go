// Package aging projects long-horizon lifetime consumption under a
// realistic duty schedule. Where internal/core's evaluator answers "what
// is the failure rate while this workload runs", this package answers the
// deployment question: given a schedule (day/night phases, idle periods,
// different workloads), how fast is the processor consuming its life, and
// when does it reach end of life?
//
// Damage is accumulated with Miner's linear rule, the standard engineering
// treatment for combining wear under varying stress: a phase of duration
// Δt at failure rate λ (MTTF = 1/λ) consumes Δt·λ of life; end of life is
// total damage 1. With constant rates this reduces exactly to the SOFR
// MTTF, so calibration carries over; with varying schedules it exposes
// the reliability cost of each phase.
package aging

import (
	"fmt"
	"sort"

	"github.com/ramp-sim/ramp/internal/core"
	"github.com/ramp-sim/ramp/internal/phys"
)

// Phase is one recurring segment of the duty schedule.
type Phase struct {
	// Name labels the phase in reports.
	Name string
	// HoursPerDay is the phase's share of a 24-hour day.
	HoursPerDay float64
	// FIT is the calibrated processor failure rate while the phase runs
	// (e.g. a sim.AppRun's calibrated total, or a fraction of it for
	// idle/sleep states).
	FIT float64
}

// Schedule is a repeating daily duty cycle.
type Schedule struct {
	Phases []Phase
}

// Validate checks that the schedule covers exactly 24 hours with
// non-negative rates.
func (s Schedule) Validate() error {
	if len(s.Phases) == 0 {
		return fmt.Errorf("aging: empty schedule")
	}
	var hours float64
	for _, p := range s.Phases {
		if p.Name == "" {
			return fmt.Errorf("aging: phase needs a name")
		}
		if p.HoursPerDay < 0 {
			return fmt.Errorf("aging: phase %q has negative duration", p.Name)
		}
		if p.FIT < 0 {
			return fmt.Errorf("aging: phase %q has negative FIT", p.Name)
		}
		hours += p.HoursPerDay
	}
	if hours < 23.999 || hours > 24.001 {
		return fmt.Errorf("aging: schedule covers %.3f hours/day, want 24", hours)
	}
	return nil
}

// Projection is the lifetime forecast for a schedule.
type Projection struct {
	// LifetimeYears is the time to accumulate unit damage.
	LifetimeYears float64
	// EffectiveFIT is the duty-weighted average failure rate.
	EffectiveFIT float64
	// DamageShare maps phase name → fraction of total damage it causes.
	DamageShare map[string]float64
	// DamagePerYear is the fraction of life consumed per year.
	DamagePerYear float64
}

// Project computes the lifetime forecast for a schedule.
func Project(s Schedule) (Projection, error) {
	if err := s.Validate(); err != nil {
		return Projection{}, err
	}
	// Damage per day: Σ hours · λ, with λ in failures/hour = FIT/1e9.
	var perDay float64
	contrib := make(map[string]float64, len(s.Phases))
	for _, p := range s.Phases {
		d := p.HoursPerDay * p.FIT / 1e9
		contrib[p.Name] += d
		perDay += d
	}
	if perDay <= 0 {
		return Projection{}, fmt.Errorf("aging: schedule accumulates no damage (all-zero FIT)")
	}
	proj := Projection{
		DamageShare:   make(map[string]float64, len(contrib)),
		DamagePerYear: perDay * 365.25,
	}
	for name, d := range contrib {
		proj.DamageShare[name] = d / perDay
	}
	proj.LifetimeYears = 1 / proj.DamagePerYear
	// Effective FIT: damage per hour × 1e9.
	proj.EffectiveFIT = perDay / 24 * 1e9
	return proj, nil
}

// MTTFYears converts a constant FIT rate to years, for cross-checking
// single-phase schedules against the SOFR MTTF.
func MTTFYears(fit float64) float64 { return phys.MTTFYearsFromFIT(fit) }

// WhatIf evaluates how the lifetime responds to trimming the most damaging
// phase: it returns projections for the original schedule and for variants
// where each phase's FIT is scaled by factor (e.g. 0.5 for a mitigation
// that halves the failure rate during that phase), sorted by lifetime
// gained.
type WhatIfResult struct {
	// Phase is the phase whose rate was scaled.
	Phase string
	// LifetimeYears is the projected lifetime with the mitigation.
	LifetimeYears float64
	// GainYears is the improvement over the baseline.
	GainYears float64
}

// WhatIf runs the per-phase mitigation analysis.
func WhatIf(s Schedule, factor float64) ([]WhatIfResult, error) {
	if factor < 0 {
		return nil, fmt.Errorf("aging: negative mitigation factor")
	}
	base, err := Project(s)
	if err != nil {
		return nil, err
	}
	results := make([]WhatIfResult, 0, len(s.Phases))
	seen := make(map[string]bool, len(s.Phases))
	for i := range s.Phases {
		name := s.Phases[i].Name
		if seen[name] {
			continue
		}
		seen[name] = true
		variant := Schedule{Phases: make([]Phase, len(s.Phases))}
		copy(variant.Phases, s.Phases)
		for j := range variant.Phases {
			if variant.Phases[j].Name == name {
				variant.Phases[j].FIT *= factor
			}
		}
		proj, err := Project(variant)
		if err != nil {
			return nil, err
		}
		results = append(results, WhatIfResult{
			Phase:         name,
			LifetimeYears: proj.LifetimeYears,
			GainYears:     proj.LifetimeYears - base.LifetimeYears,
		})
	}
	sort.Slice(results, func(i, j int) bool {
		return results[i].GainYears > results[j].GainYears
	})
	return results, nil
}

// FromBreakdowns builds a schedule phase from a calibrated breakdown.
func FromBreakdowns(name string, hoursPerDay float64, b core.Breakdown) Phase {
	return Phase{Name: name, HoursPerDay: hoursPerDay, FIT: b.Total()}
}
