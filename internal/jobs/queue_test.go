package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// newTestQueue builds a queue with a fast retry cadence and registers
// cleanup. The executor is supplied per test.
func newTestQueue(t *testing.T, cfg Config, exec Executor) *Queue {
	t.Helper()
	if cfg.RetryBackoff == 0 {
		cfg.RetryBackoff = time.Millisecond
	}
	q, err := New(cfg, exec)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(q.Close)
	return q
}

// specs builds n unique specs keyed k0..k(n-1).
func specs(n int) []Spec {
	out := make([]Spec, n)
	for i := range out {
		out[i] = Spec{Key: fmt.Sprintf("k%d", i), Kind: "study", Payload: i}
	}
	return out
}

// waitDone polls until the batch reports done or the deadline passes.
func waitDone(t *testing.T, q *Queue, batchID string) BatchStatus {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		st, ok := q.Batch(batchID)
		if !ok {
			t.Fatalf("batch %s vanished while waiting", batchID)
		}
		if st.Done {
			return st
		}
		time.Sleep(time.Millisecond)
	}
	st, _ := q.Batch(batchID)
	t.Fatalf("batch %s not done before deadline: %+v", batchID, st.Counts)
	return BatchStatus{}
}

func TestValidTransitions(t *testing.T) {
	valid := []struct{ from, to State }{
		{StateQueued, StateRunning}, {StateQueued, StateCancelled},
		{StateRunning, StateDone}, {StateRunning, StateFailed},
		{StateRunning, StateQueued}, {StateRunning, StateCancelled},
	}
	for _, e := range valid {
		if !validTransition(e.from, e.to) {
			t.Errorf("%s→%s should be valid", e.from, e.to)
		}
	}
	for _, terminal := range []State{StateDone, StateFailed, StateCancelled} {
		for _, to := range []State{StateQueued, StateRunning, StateDone, StateFailed, StateCancelled} {
			if validTransition(terminal, to) {
				t.Errorf("%s→%s should be invalid (terminal states are final)", terminal, to)
			}
		}
	}
	if validTransition(StateQueued, StateDone) {
		t.Error("queued→done must pass through running")
	}
}

// TestSubmitRunsEachUniqueJobOnce: a batch with intra-batch duplicates
// executes one run per distinct key, positions map onto shared IDs, and
// every result is retrievable.
func TestSubmitRunsEachUniqueJobOnce(t *testing.T) {
	var runs atomic.Int64
	q := newTestQueue(t, Config{Workers: 4}, func(ctx context.Context, j *Job) (any, error) {
		runs.Add(1)
		return "result:" + j.Key, nil
	})

	sp := []Spec{
		{Key: "a", Kind: "study"}, {Key: "b", Kind: "study"},
		{Key: "a", Kind: "study"}, {Key: "b", Kind: "study"}, {Key: "a", Kind: "study"},
	}
	st, err := q.Submit("t1", sp)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.JobIDs) != 5 || len(st.Jobs) != 2 {
		t.Fatalf("job_ids=%d unique=%d, want 5/2", len(st.JobIDs), len(st.Jobs))
	}
	if st.JobIDs[0] != st.JobIDs[2] || st.JobIDs[0] != st.JobIDs[4] || st.JobIDs[1] != st.JobIDs[3] {
		t.Fatalf("duplicate positions should share IDs: %v", st.JobIDs)
	}

	final := waitDone(t, q, st.ID)
	if got := runs.Load(); got != 2 {
		t.Errorf("executor ran %d times, want 2", got)
	}
	if final.Counts[StateDone] != 2 {
		t.Errorf("done count = %d, want 2", final.Counts[StateDone])
	}
	for _, snap := range final.Jobs {
		j, ok := q.Job(st.ID, snap.ID)
		if !ok {
			t.Fatalf("job %s not found", snap.ID)
		}
		res, ok := j.Result()
		if !ok || res != "result:"+snap.Key {
			t.Errorf("job %s result = %v (ok=%v)", snap.ID, res, ok)
		}
		if snap.Percent != 100 {
			t.Errorf("done job percent = %v, want 100", snap.Percent)
		}
	}
	stats := q.Stats()
	if stats.Submitted != 2 || stats.Deduped != 3 || stats.Done != 2 || stats.Live != 0 {
		t.Errorf("stats = %+v, want submitted 2, deduped 3, done 2, live 0", stats)
	}
}

// TestDedupAgainstLiveJobs: a second batch naming a key that is still
// in flight reuses the live job instead of enqueueing a duplicate.
func TestDedupAgainstLiveJobs(t *testing.T) {
	release := make(chan struct{})
	var runs atomic.Int64
	q := newTestQueue(t, Config{Workers: 2}, func(ctx context.Context, j *Job) (any, error) {
		runs.Add(1)
		<-release
		return j.Key, nil
	})

	st1, err := q.Submit("t1", []Spec{{Key: "shared", Kind: "study"}})
	if err != nil {
		t.Fatal(err)
	}
	st2, err := q.Submit("t2", []Spec{{Key: "shared", Kind: "study"}, {Key: "own", Kind: "study"}})
	if err != nil {
		t.Fatal(err)
	}
	if st1.JobIDs[0] != st2.JobIDs[0] {
		t.Fatalf("cross-batch duplicate got a fresh job: %s vs %s", st1.JobIDs[0], st2.JobIDs[0])
	}
	close(release)
	waitDone(t, q, st1.ID)
	waitDone(t, q, st2.ID)
	if got := runs.Load(); got != 2 {
		t.Errorf("executor ran %d times, want 2 (shared ran once)", got)
	}
}

// TestRetryWithBackoff: transient failures re-queue with backoff until
// success; the attempt counter and the retried total record the journey.
func TestRetryWithBackoff(t *testing.T) {
	var calls atomic.Int64
	q := newTestQueue(t, Config{Workers: 1, MaxAttempts: 3}, func(ctx context.Context, j *Job) (any, error) {
		if calls.Add(1) < 3 {
			return nil, errors.New("transient")
		}
		return "ok", nil
	})
	st, err := q.Submit("t", specs(1))
	if err != nil {
		t.Fatal(err)
	}
	final := waitDone(t, q, st.ID)
	if final.Counts[StateDone] != 1 {
		t.Fatalf("job not done after retries: %+v", final.Counts)
	}
	if final.Jobs[0].Attempts != 3 {
		t.Errorf("attempts = %d, want 3", final.Jobs[0].Attempts)
	}
	if got := q.Stats().Retried; got != 2 {
		t.Errorf("retried total = %d, want 2", got)
	}
}

// TestAttemptsExhaustedFails: a persistently transient error fails the job
// once MaxAttempts is reached, and the terminal error names the attempts.
func TestAttemptsExhaustedFails(t *testing.T) {
	q := newTestQueue(t, Config{Workers: 1, MaxAttempts: 2}, func(ctx context.Context, j *Job) (any, error) {
		return nil, errors.New("always broken")
	})
	st, _ := q.Submit("t", specs(1))
	final := waitDone(t, q, st.ID)
	if final.Counts[StateFailed] != 1 {
		t.Fatalf("want failed, got %+v", final.Counts)
	}
	j, _ := q.Job(st.ID, final.Jobs[0].ID)
	if err := j.Err(); err == nil || j.Snapshot(time.Now()).Attempts != 2 {
		t.Errorf("failed job err=%v attempts=%d, want wrapped error after 2 attempts",
			err, j.Snapshot(time.Now()).Attempts)
	}
}

// TestPermanentErrorSkipsRetry: the Retryable classifier short-circuits
// retries for permanent failures.
func TestPermanentErrorSkipsRetry(t *testing.T) {
	permanent := errors.New("bad input")
	var calls atomic.Int64
	q := newTestQueue(t, Config{
		Workers:     1,
		MaxAttempts: 5,
		Retryable:   func(err error) bool { return !errors.Is(err, permanent) },
	}, func(ctx context.Context, j *Job) (any, error) {
		calls.Add(1)
		return nil, permanent
	})
	st, _ := q.Submit("t", specs(1))
	final := waitDone(t, q, st.ID)
	if final.Counts[StateFailed] != 1 || calls.Load() != 1 {
		t.Errorf("permanent error: counts=%+v calls=%d, want 1 failed after 1 call",
			final.Counts, calls.Load())
	}
}

// TestCancelQueuedJob: cancelling a job that is still waiting prevents it
// from ever executing.
func TestCancelQueuedJob(t *testing.T) {
	release := make(chan struct{})
	var ran sync.Map
	q := newTestQueue(t, Config{Workers: 1}, func(ctx context.Context, j *Job) (any, error) {
		ran.Store(j.Key, true)
		<-release
		return nil, nil
	})
	st, _ := q.Submit("t", specs(2)) // worker 1 takes k0; k1 waits
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, ok := ran.Load("k0"); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
		time.Sleep(time.Millisecond)
	}
	if err := q.Cancel(st.JobIDs[1]); err != nil {
		t.Fatal(err)
	}
	close(release)
	final := waitDone(t, q, st.ID)
	if final.Counts[StateCancelled] != 1 || final.Counts[StateDone] != 1 {
		t.Fatalf("counts = %+v, want 1 done + 1 cancelled", final.Counts)
	}
	if _, ok := ran.Load("k1"); ok {
		t.Error("cancelled-while-queued job still executed")
	}
}

// TestCancelRunningJob: cancelling a running job cancels its executor
// context and the job lands in cancelled, not failed.
func TestCancelRunningJob(t *testing.T) {
	started := make(chan struct{})
	q := newTestQueue(t, Config{Workers: 1}, func(ctx context.Context, j *Job) (any, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	})
	st, _ := q.Submit("t", specs(1))
	<-started
	if err := q.Cancel(st.JobIDs[0]); err != nil {
		t.Fatal(err)
	}
	final := waitDone(t, q, st.ID)
	if final.Counts[StateCancelled] != 1 {
		t.Fatalf("counts = %+v, want cancelled", final.Counts)
	}
	if got := q.Stats().Cancelled; got != 1 {
		t.Errorf("cancelled total = %d, want 1", got)
	}
}

// TestCancelBatch cancels everything non-terminal in one call.
func TestCancelBatch(t *testing.T) {
	release := make(chan struct{})
	q := newTestQueue(t, Config{Workers: 1}, func(ctx context.Context, j *Job) (any, error) {
		select {
		case <-release:
			return nil, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	})
	st, _ := q.Submit("t", specs(3))
	if err := q.CancelBatch(st.ID); err != nil {
		t.Fatal(err)
	}
	close(release)
	final := waitDone(t, q, st.ID)
	if final.Counts[StateCancelled] != 3 {
		t.Errorf("counts = %+v, want 3 cancelled", final.Counts)
	}
	if err := q.CancelBatch("nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown batch cancel err = %v, want ErrNotFound", err)
	}
}

// TestQueueFullAllOrNothing: a submission that would exceed capacity is
// rejected whole — no partial enqueue, no quota charge.
func TestQueueFullAllOrNothing(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	q := newTestQueue(t, Config{Capacity: 2, Workers: 1,
		Quota: QuotaConfig{MaxInflight: 10}},
		func(ctx context.Context, j *Job) (any, error) { <-release; return nil, nil })
	if _, err := q.Submit("t", specs(2)); err != nil {
		t.Fatal(err)
	}
	_, err := q.Submit("t", specs(3)[2:]) // one more than capacity allows
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	if got := q.Stats().Live; got != 2 {
		t.Errorf("live after rejection = %d, want 2 (nothing partially enqueued)", got)
	}
}

// TestTenantInflightQuota: MaxInflight rejects per tenant while other
// tenants keep their own budget; slots free as jobs finish.
func TestTenantInflightQuota(t *testing.T) {
	release := make(chan struct{})
	q := newTestQueue(t, Config{Workers: 1, Quota: QuotaConfig{MaxInflight: 2}},
		func(ctx context.Context, j *Job) (any, error) { <-release; return nil, nil })
	st, err := q.Submit("alice", specs(2))
	if err != nil {
		t.Fatal(err)
	}
	var quotaErr *QuotaError
	if _, err := q.Submit("alice", []Spec{{Key: "k9", Kind: "study"}}); !errors.As(err, &quotaErr) {
		t.Fatalf("over-quota err = %v, want *QuotaError", err)
	} else if quotaErr.Limit != "inflight" {
		t.Errorf("quota limit = %q, want inflight", quotaErr.Limit)
	}
	if _, err := q.Submit("bob", []Spec{{Key: "k8", Kind: "study"}}); err != nil {
		t.Errorf("other tenant blocked by alice's quota: %v", err)
	}
	close(release)
	waitDone(t, q, st.ID)
	if _, err := q.Submit("alice", []Spec{{Key: "k7", Kind: "study"}}); err != nil {
		t.Errorf("quota slot not released after completion: %v", err)
	}
}

// TestTenantRateQuota: the token bucket throttles sustained submission
// and refills with the (fake) clock.
func TestTenantRateQuota(t *testing.T) {
	var clock atomic.Int64 // unix nanos
	base := time.Unix(1700000000, 0)
	clock.Store(int64(0))
	now := func() time.Time { return base.Add(time.Duration(clock.Load())) }
	q := newTestQueue(t, Config{
		Workers: 1,
		Quota:   QuotaConfig{JobsPerSecond: 2, Burst: 2},
		Now:     now,
	}, func(ctx context.Context, j *Job) (any, error) { return nil, nil })

	if _, err := q.Submit("t", specs(2)); err != nil {
		t.Fatal(err)
	}
	var quotaErr *QuotaError
	if _, err := q.Submit("t", []Spec{{Key: "x1", Kind: "study"}}); !errors.As(err, &quotaErr) {
		t.Fatalf("rate-limited err = %v, want *QuotaError", err)
	}
	clock.Store(int64(time.Second)) // refill 2 tokens
	if _, err := q.Submit("t", []Spec{{Key: "x2", Kind: "study"}, {Key: "x3", Kind: "study"}}); err != nil {
		t.Errorf("bucket did not refill: %v", err)
	}
}

// TestResultTTLSweep: finished batches expire ResultTTL after completion
// and their jobs are garbage-collected with them.
func TestResultTTLSweep(t *testing.T) {
	var clock atomic.Int64
	base := time.Unix(1700000000, 0)
	now := func() time.Time { return base.Add(time.Duration(clock.Load())) }
	q := newTestQueue(t, Config{Workers: 1, ResultTTL: time.Minute, Now: now},
		func(ctx context.Context, j *Job) (any, error) { return "r", nil })
	st, _ := q.Submit("t", specs(1))
	waitDone(t, q, st.ID)

	clock.Store(int64(30 * time.Second))
	if _, ok := q.Batch(st.ID); !ok {
		t.Fatal("batch expired before its TTL")
	}
	clock.Store(int64(2 * time.Minute))
	if _, ok := q.Batch(st.ID); ok {
		t.Error("batch survived past its TTL")
	}
	if _, ok := q.Job(st.ID, st.JobIDs[0]); ok {
		t.Error("job survived its batch's expiry")
	}
}

// TestSubscribe: subscribers see the queued→running→done transitions of
// their batch and nothing from other batches.
func TestSubscribe(t *testing.T) {
	gate := make(chan struct{})
	q := newTestQueue(t, Config{Workers: 1}, func(ctx context.Context, j *Job) (any, error) {
		<-gate
		return nil, nil
	})
	st, _ := q.Submit("t", specs(1))
	events, stop, ok := q.Subscribe(st.ID)
	if !ok {
		t.Fatal("subscribe failed")
	}
	defer stop()
	close(gate)
	var seen []State
	deadline := time.After(5 * time.Second)
	for len(seen) < 2 {
		select {
		case ev := <-events:
			if ev.BatchID != st.ID {
				t.Fatalf("event for foreign batch %s", ev.BatchID)
			}
			seen = append(seen, ev.To)
		case <-deadline:
			t.Fatalf("saw only %v before deadline", seen)
		}
	}
	if seen[0] != StateRunning || seen[1] != StateDone {
		t.Errorf("transition order = %v, want [running done]", seen)
	}
}

// TestSubmitAfterClose fails with ErrClosed.
func TestSubmitAfterClose(t *testing.T) {
	q := newTestQueue(t, Config{}, func(ctx context.Context, j *Job) (any, error) { return nil, nil })
	q.Close()
	if _, err := q.Submit("t", specs(1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

// TestSetPercentOnlyWhileRunning: progress is clamped and ignored outside
// the running state.
func TestSetPercentOnlyWhileRunning(t *testing.T) {
	j := &Job{ID: "j1", state: StateQueued, createdAt: time.Now()}
	j.SetPercent(50)
	if p := j.Snapshot(time.Now()).Percent; p != 0 {
		t.Errorf("queued job accepted percent %v", p)
	}
	j.state = StateRunning
	j.SetPercent(150)
	if p := j.Snapshot(time.Now()).Percent; p != 100 {
		t.Errorf("percent not clamped: %v", p)
	}
	j.SetPercent(10) // regressions ignored
	if p := j.Snapshot(time.Now()).Percent; p != 100 {
		t.Errorf("percent regressed to %v", p)
	}
}
