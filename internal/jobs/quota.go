package jobs

import (
	"sync"
	"time"
)

// QuotaConfig bounds per-tenant admission. The zero value disables both
// limits.
type QuotaConfig struct {
	// JobsPerSecond is the sustained per-tenant job-admission rate; 0
	// disables rate limiting.
	JobsPerSecond float64
	// Burst is the token-bucket depth; 0 defaults to the larger of
	// JobsPerSecond and 1, so a tenant can always submit at least one job
	// after an idle second.
	Burst int
	// MaxInflight caps a tenant's live (queued + running) jobs; 0
	// disables the cap.
	MaxInflight int
}

// tenantBucket is one tenant's token bucket plus inflight gauge.
type tenantBucket struct {
	tokens   float64
	last     time.Time
	inflight int
}

// quotas tracks per-tenant admission state. All methods are safe for
// concurrent use.
type quotas struct {
	mu  sync.Mutex
	cfg QuotaConfig
	by  map[string]*tenantBucket
}

func newQuotas(cfg QuotaConfig) *quotas {
	if cfg.JobsPerSecond > 0 && cfg.Burst <= 0 {
		cfg.Burst = int(cfg.JobsPerSecond)
		if cfg.Burst < 1 {
			cfg.Burst = 1
		}
	}
	return &quotas{cfg: cfg, by: make(map[string]*tenantBucket)}
}

// admit charges tenant for n new jobs at time now. It is all-or-nothing:
// either every job is admitted (tokens consumed, inflight raised) or none
// is and the blocking limit is reported.
func (q *quotas) admit(tenant string, n int, now time.Time) error {
	if n == 0 {
		return nil
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	b := q.by[tenant]
	if b == nil {
		b = &tenantBucket{tokens: float64(q.cfg.Burst), last: now}
		q.by[tenant] = b
	}
	if q.cfg.JobsPerSecond > 0 {
		b.tokens += now.Sub(b.last).Seconds() * q.cfg.JobsPerSecond
		if max := float64(q.cfg.Burst); b.tokens > max {
			b.tokens = max
		}
		b.last = now
		if b.tokens < float64(n) {
			return &QuotaError{Tenant: tenant, Limit: "rate",
				Detail: "per-tenant submission rate exceeded"}
		}
	}
	if q.cfg.MaxInflight > 0 && b.inflight+n > q.cfg.MaxInflight {
		return &QuotaError{Tenant: tenant, Limit: "inflight",
			Detail: "per-tenant in-flight job cap exceeded"}
	}
	if q.cfg.JobsPerSecond > 0 {
		b.tokens -= float64(n)
	}
	b.inflight += n
	return nil
}

// release returns n inflight slots to tenant when jobs reach a terminal
// state.
func (q *quotas) release(tenant string, n int) {
	if n == 0 {
		return
	}
	q.mu.Lock()
	if b := q.by[tenant]; b != nil {
		b.inflight -= n
		if b.inflight < 0 {
			b.inflight = 0
		}
	}
	q.mu.Unlock()
}

// QuotaError reports a per-tenant admission rejection; the serving layer
// maps it to 429.
type QuotaError struct {
	Tenant string
	Limit  string // "rate" or "inflight"
	Detail string
}

func (e *QuotaError) Error() string {
	return "jobs: tenant " + e.Tenant + ": " + e.Detail
}
