// Package jobs is the asynchronous job-queue subsystem behind the batch
// study API: a bounded FIFO of content-addressed jobs executed by a fixed
// worker pool, with deduplication, per-tenant admission quotas, retry with
// backoff for transient failures, and TTL'd retention of finished work.
//
// The package is deliberately ignorant of HTTP and of the simulation: a
// job carries an opaque payload and a content-address key, and an
// injectable Executor turns the payload into a result. The serving layer
// supplies an executor that routes through its singleflight group and
// result cache, so a batch job deduplicates against interactive traffic
// exactly like a blocking request would.
//
// Lifecycle FSM:
//
//	queued ──▶ running ──▶ done
//	   │           │  ╲──▶ failed      (attempts exhausted, or permanent)
//	   │           │  ╲──▶ queued      (transient failure, retry w/ backoff)
//	   ╰──▶ cancelled ◀────╯           (explicit cancel, any non-terminal state)
//
// done, failed, and cancelled are terminal; a terminal job never changes
// state again and is swept from the queue's indexes once its TTL expires.
package jobs

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// State is a job's lifecycle state.
type State string

const (
	// StateQueued: admitted and waiting for a worker (also the state a
	// transiently failed job returns to while it awaits its retry).
	StateQueued State = "queued"
	// StateRunning: an executor is working on the job right now.
	StateRunning State = "running"
	// StateDone: the executor returned a result; terminal.
	StateDone State = "done"
	// StateFailed: the executor failed permanently or exhausted its
	// attempts; terminal.
	StateFailed State = "failed"
	// StateCancelled: the job was cancelled before it produced a result;
	// terminal.
	StateCancelled State = "cancelled"
)

// Terminal reports whether a state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// validTransition is the FSM edge set. Self-transitions are invalid; the
// queued→queued retry edge passes through running first.
func validTransition(from, to State) bool {
	switch from {
	case StateQueued:
		return to == StateRunning || to == StateCancelled
	case StateRunning:
		return to == StateDone || to == StateFailed || to == StateQueued || to == StateCancelled
	default: // terminal
		return false
	}
}

// Kind labels what an executor should do with a job's payload. The queue
// treats it as opaque; the serving layer defines the vocabulary
// ("study", "mc").
type Kind string

// Origin records where a job came from, so executor spans and logs stay
// attributable to the submitting request end to end. The queue carries it
// opaquely; when deduplication folds identical submissions into one job,
// the first submitter's origin wins.
type Origin struct {
	// RequestID is the X-Request-ID of the submitting HTTP request.
	RequestID string
	// Traceparent is the W3C traceparent the submission carried (the
	// server's child context, rendered), "" when none.
	Traceparent string
}

// Job is one unit of queued work. All mutable state is guarded by mu;
// readers use Snapshot. The queue is the only writer of state transitions.
type Job struct {
	// ID is the queue-unique job identifier.
	ID string
	// Key is the job's content address: two jobs with equal keys compute
	// the same thing, which is what the dedup index exploits.
	Key string
	// Kind routes the payload inside the executor.
	Kind Kind
	// Tenant is the admission-quota bucket the job was charged to.
	Tenant string
	// Origin attributes the job to its submitting request, immutable
	// after submission.
	Origin Origin
	// Payload is the executor's input, immutable after submission.
	Payload any

	mu        sync.Mutex
	state     State
	attempts  int
	percent   float64
	err       error
	result    any
	createdAt time.Time
	startedAt time.Time
	doneAt    time.Time
	cancel    context.CancelFunc // set while running
	cancelled bool               // latched by Cancel so a queued job skips execution
}

// Snapshot is a consistent, JSON-marshalable view of a job.
type Snapshot struct {
	ID       string  `json:"id"`
	Key      string  `json:"key"`
	Kind     Kind    `json:"kind"`
	Tenant   string  `json:"tenant,omitempty"`
	State    State   `json:"state"`
	Percent  float64 `json:"percent"`
	Attempts int     `json:"attempts"`
	Error    string  `json:"error,omitempty"`
	// QueuedMS and RunMS are the times spent waiting and executing so
	// far (or in total, once terminal), in milliseconds.
	QueuedMS float64 `json:"queued_ms"`
	RunMS    float64 `json:"run_ms"`
}

// Snapshot returns the job's current view; now supplies the clock for the
// elapsed-time fields.
func (j *Job) Snapshot(now time.Time) Snapshot {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := Snapshot{
		ID:       j.ID,
		Key:      j.Key,
		Kind:     j.Kind,
		Tenant:   j.Tenant,
		State:    j.state,
		Percent:  j.percent,
		Attempts: j.attempts,
	}
	if j.err != nil {
		s.Error = j.err.Error()
	}
	switch {
	case j.startedAt.IsZero():
		s.QueuedMS = ms(now.Sub(j.createdAt))
	default:
		s.QueuedMS = ms(j.startedAt.Sub(j.createdAt))
		end := j.doneAt
		if end.IsZero() {
			end = now
		}
		s.RunMS = ms(end.Sub(j.startedAt))
	}
	return s
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// State returns the job's current state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Result returns the executor's result once the job is done.
func (j *Job) Result() (any, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateDone {
		return nil, false
	}
	return j.result, true
}

// Err returns the terminal error of a failed or cancelled job.
func (j *Job) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateFailed && j.state != StateCancelled {
		return nil
	}
	return j.err
}

// SetPercent publishes execution progress in [0,100]; executors call it
// from worker goroutines. No-op outside the running state.
func (j *Job) SetPercent(p float64) {
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	j.mu.Lock()
	if j.state == StateRunning && p > j.percent {
		j.percent = p
	}
	j.mu.Unlock()
}

// transition moves the job along an FSM edge, returning an error on an
// invalid move. Callers pass a closure mutating the state-adjacent fields
// under the same critical section.
func (j *Job) transition(to State, with func()) (State, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	from := j.state
	if !validTransition(from, to) {
		return from, fmt.Errorf("jobs: invalid transition %s→%s for job %s", from, to, j.ID)
	}
	j.state = to
	if with != nil {
		with()
	}
	return from, nil
}
