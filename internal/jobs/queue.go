package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// Errors returned by Submit and the lookup/cancel methods.
var (
	// ErrQueueFull: admitting the batch would push live jobs past the
	// queue's capacity; the serving layer maps it to 429.
	ErrQueueFull = errors.New("jobs: queue full")
	// ErrClosed: the queue has been closed.
	ErrClosed = errors.New("jobs: queue closed")
	// ErrNotFound: no such batch or job (or its retention TTL expired).
	ErrNotFound = errors.New("jobs: not found")
)

// Config parameterises a Queue.
type Config struct {
	// Capacity bounds live (queued + running) jobs across all tenants
	// (default 256). Submissions that would exceed it fail whole with
	// ErrQueueFull.
	Capacity int
	// Workers is the number of concurrent executors (default 4).
	Workers int
	// MaxAttempts bounds executions per job including the first
	// (default 3). Transient failures below the bound re-queue with
	// backoff; at the bound the job fails.
	MaxAttempts int
	// RetryBackoff is the delay before the first retry, doubling per
	// attempt (default 250ms).
	RetryBackoff time.Duration
	// ResultTTL is how long finished batches (and their job results) are
	// retained for status/result queries after the last job reaches a
	// terminal state (default 15m).
	ResultTTL time.Duration
	// Quota is the per-tenant admission policy.
	Quota QuotaConfig
	// Retryable classifies executor errors; nil treats every error as
	// transient. Permanent errors (bad requests, cancellations) fail the
	// job on the first attempt.
	Retryable func(error) bool
	// Now overrides the clock for tests; nil uses time.Now.
	Now func() time.Time
}

// Executor turns one job's payload into its result. It runs on a worker
// goroutine under a queue-lifetime context that is cancelled when the job
// (or the queue) is cancelled; implementations should propagate ctx and
// may publish progress via Job.SetPercent.
type Executor func(ctx context.Context, j *Job) (any, error)

// Spec is one job submission: the content-address key plus the executor
// payload and the submitting request's origin.
type Spec struct {
	Key     string
	Kind    Kind
	Origin  Origin
	Payload any
}

// Event is one job state transition, delivered to batch subscribers.
type Event struct {
	BatchID string   `json:"batch_id"`
	From    State    `json:"from"`
	To      State    `json:"to"`
	Job     Snapshot `json:"job"`
}

// batch groups the jobs of one submission.
type batch struct {
	id        string
	tenant    string
	createdAt time.Time
	jobIDs    []string // one per submitted spec; duplicates share an ID
	jobs      []*Job   // unique jobs, first-seen order
	remaining int      // jobs not yet terminal
	doneAt    time.Time
}

// BatchStatus is a consistent, JSON-marshalable view of a batch.
type BatchStatus struct {
	ID     string `json:"id"`
	Tenant string `json:"tenant,omitempty"`
	// JobIDs maps each submitted config position to its job; duplicate
	// configs repeat the deduplicated job's ID.
	JobIDs []string `json:"job_ids"`
	// Jobs holds the unique jobs, in first-seen order.
	Jobs []Snapshot `json:"jobs"`
	// Counts tallies unique jobs by state.
	Counts map[State]int `json:"counts"`
	// Done reports every unique job terminal.
	Done bool `json:"done"`
}

// Stats is a point-in-time view of the queue's counters. Queued, Running,
// and Live are gauges; the rest are cumulative.
type Stats struct {
	Queued    int   `json:"queued"`
	Running   int   `json:"running"`
	Live      int   `json:"live"`
	Capacity  int   `json:"capacity"`
	Submitted int64 `json:"submitted_total"`
	Deduped   int64 `json:"deduped_total"`
	Retried   int64 `json:"retried_total"`
	Done      int64 `json:"done_total"`
	Failed    int64 `json:"failed_total"`
	Cancelled int64 `json:"cancelled_total"`
}

// subscriber is one batch-event listener.
type subscriber struct {
	batchID string
	ch      chan Event
}

// Queue is the job queue. Create with New; the zero value is not usable.
// All methods are safe for concurrent use.
//
// Locking: every FSM transition and its queue-level accounting happen
// atomically under q.mu (transitionJob), with j.mu nested inside. Nothing
// acquires q.mu while holding a job's lock.
type Queue struct {
	cfg    Config
	exec   Executor
	quotas *quotas
	now    func() time.Time

	baseCtx    context.Context
	baseCancel context.CancelFunc
	work       chan *Job
	wg         sync.WaitGroup

	mu      sync.Mutex
	closed  bool
	seq     int
	jobs    map[string]*Job     // by ID, live + retained
	index   map[string]*Job     // by content key, live only (dedup)
	batches map[string]*batch   // by batch ID, live + retained
	owners  map[string][]*batch // job ID → batches referencing it
	subs    []*subscriber
	live    int
	stats   Stats
}

// New validates cfg, applies defaults, starts the workers, and returns a
// ready queue.
func New(cfg Config, exec Executor) (*Queue, error) {
	if exec == nil {
		return nil, errors.New("jobs: nil executor")
	}
	if cfg.Capacity <= 0 {
		cfg.Capacity = 256
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 250 * time.Millisecond
	}
	if cfg.ResultTTL <= 0 {
		cfg.ResultTTL = 15 * time.Minute
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	ctx, cancel := context.WithCancel(context.Background())
	q := &Queue{
		cfg:        cfg,
		exec:       exec,
		quotas:     newQuotas(cfg.Quota),
		now:        now,
		baseCtx:    ctx,
		baseCancel: cancel,
		work:       make(chan *Job, cfg.Capacity),
		jobs:       make(map[string]*Job),
		index:      make(map[string]*Job),
		batches:    make(map[string]*batch),
		owners:     make(map[string][]*batch),
	}
	q.stats.Capacity = cfg.Capacity
	for i := 0; i < cfg.Workers; i++ {
		q.wg.Add(1)
		go q.worker()
	}
	return q, nil
}

// Close cancels every running job, stops the workers, and waits for them.
// Queued jobs are abandoned; Submit fails with ErrClosed afterwards.
func (q *Queue) Close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.baseCancel()
	q.wg.Wait()
}

// Submit admits one batch of specs for tenant. Specs whose key matches a
// live (queued or running) job — within this batch or from an earlier one
// — reuse that job instead of enqueueing a duplicate; only genuinely new
// jobs consume queue capacity and tenant quota. Admission is
// all-or-nothing: on ErrQueueFull or a *QuotaError nothing was enqueued.
// The returned status is the batch's initial view (every new job queued).
func (q *Queue) Submit(tenant string, specs []Spec) (BatchStatus, error) {
	if len(specs) == 0 {
		return BatchStatus{}, errors.New("jobs: empty batch")
	}
	now := q.now()
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return BatchStatus{}, ErrClosed
	}
	q.sweepLocked(now)

	// Resolve dedup first so admission charges only new work. Transitions
	// are serialised on q.mu, so a job found in the index cannot turn
	// terminal while this runs.
	var created []*Job
	resolved := make([]*Job, len(specs))
	batchNew := make(map[string]*Job)
	for i, sp := range specs {
		if j, ok := q.index[sp.Key]; ok {
			resolved[i] = j
			q.stats.Deduped++
			continue
		}
		if j, ok := batchNew[sp.Key]; ok {
			resolved[i] = j
			q.stats.Deduped++
			continue
		}
		j := &Job{Key: sp.Key, Kind: sp.Kind, Tenant: tenant, Origin: sp.Origin,
			Payload: sp.Payload, state: StateQueued, createdAt: now}
		batchNew[sp.Key] = j
		resolved[i] = j
		created = append(created, j)
	}

	if q.live+len(created) > q.cfg.Capacity {
		q.mu.Unlock()
		return BatchStatus{}, fmt.Errorf("%w: %d live + %d new jobs exceeds capacity %d",
			ErrQueueFull, q.live, len(created), q.cfg.Capacity)
	}
	if err := q.quotas.admit(tenant, len(created), now); err != nil {
		q.mu.Unlock()
		return BatchStatus{}, err
	}

	// Point of no return: register IDs, the batch, and the dedup index.
	q.seq++
	b := &batch{id: fmt.Sprintf("b%06d", q.seq), tenant: tenant, createdAt: now}
	seen := make(map[string]bool)
	for _, j := range resolved {
		if j.ID == "" {
			q.seq++
			j.ID = fmt.Sprintf("j%06d", q.seq)
			q.jobs[j.ID] = j
			q.index[j.Key] = j
			q.live++
			q.stats.Queued++
			q.stats.Submitted++
		}
		b.jobIDs = append(b.jobIDs, j.ID)
		if !seen[j.ID] {
			seen[j.ID] = true
			b.jobs = append(b.jobs, j)
			b.remaining++
			q.owners[j.ID] = append(q.owners[j.ID], b)
		}
	}
	q.batches[b.id] = b
	status := q.batchStatusLocked(b, now)
	q.mu.Unlock()

	for _, j := range created {
		q.push(j)
	}
	return status, nil
}

// push hands a job to the workers. The channel's capacity equals the
// live-job bound, so the send only parks during queue shutdown.
func (q *Queue) push(j *Job) {
	select {
	case q.work <- j:
	case <-q.baseCtx.Done():
	}
}

// worker executes jobs until the queue closes.
func (q *Queue) worker() {
	defer q.wg.Done()
	for {
		select {
		case j := <-q.work:
			q.run(j)
		case <-q.baseCtx.Done():
			return
		}
	}
}

// run executes one job through the FSM: running, then done / failed /
// re-queued for retry / cancelled.
func (q *Queue) run(j *Job) {
	ctx, cancel := context.WithCancel(q.baseCtx)
	defer cancel()
	start := q.now()
	if !q.transitionJob(j, StateRunning, func() {
		j.cancel = cancel
		j.startedAt = start
		j.attempts++
	}) {
		// Cancelled while queued (or a stale retry of a cancelled job);
		// accounting already happened at cancel time.
		return
	}

	res, execErr := q.exec(withJob(ctx, j), j)

	j.mu.Lock()
	wasCancelled := j.cancelled
	attempts := j.attempts
	j.cancel = nil
	j.mu.Unlock()
	end := q.now()

	switch {
	case execErr == nil:
		q.transitionJob(j, StateDone, func() {
			j.result = res
			j.err = nil
			j.percent = 100
			j.doneAt = end
		})
	case wasCancelled || q.baseCtx.Err() != nil:
		q.transitionJob(j, StateCancelled, func() {
			j.err = execErr
			j.doneAt = end
		})
	case attempts < q.cfg.MaxAttempts && q.retryable(execErr):
		if q.transitionJob(j, StateQueued, func() {
			j.err = execErr
			j.percent = 0
		}) {
			backoff := q.cfg.RetryBackoff << uint(attempts-1)
			time.AfterFunc(backoff, func() { q.push(j) })
		}
	default:
		q.transitionJob(j, StateFailed, func() {
			j.err = fmt.Errorf("attempt %d/%d: %w", attempts, q.cfg.MaxAttempts, execErr)
			j.doneAt = end
		})
	}
}

// retryable classifies an executor error as transient.
func (q *Queue) retryable(err error) bool {
	if q.cfg.Retryable == nil {
		return true
	}
	return q.cfg.Retryable(err)
}

// transitionJob performs one FSM edge and its queue-level accounting —
// gauges, terminal counters, the dedup index, batch completion, events —
// atomically under q.mu. Returns false (and changes nothing) when the
// edge is invalid from the job's current state, e.g. a worker picking up
// a job that was cancelled while queued.
func (q *Queue) transitionJob(j *Job, to State, with func()) bool {
	now := q.now()
	q.mu.Lock()
	from, err := j.transition(to, with)
	if err != nil {
		q.mu.Unlock()
		return false
	}
	switch from {
	case StateQueued:
		q.stats.Queued--
	case StateRunning:
		q.stats.Running--
	}
	switch to {
	case StateQueued:
		q.stats.Queued++
		q.stats.Retried++
	case StateRunning:
		q.stats.Running++
	case StateDone:
		q.stats.Done++
	case StateFailed:
		q.stats.Failed++
	case StateCancelled:
		q.stats.Cancelled++
	}
	if to.Terminal() {
		q.live--
		if q.index[j.Key] == j {
			delete(q.index, j.Key)
		}
		for _, b := range q.owners[j.ID] {
			b.remaining--
			if b.remaining == 0 && b.doneAt.IsZero() {
				b.doneAt = now
			}
		}
	}
	if len(q.subs) > 0 {
		snap := j.Snapshot(now)
		for _, b := range q.owners[j.ID] {
			for _, s := range q.subs {
				if s.batchID == b.id {
					select {
					case s.ch <- Event{BatchID: b.id, From: from, To: to, Job: snap}:
					default: // slow subscriber: drop, polling recovers
					}
				}
			}
		}
	}
	q.mu.Unlock()
	if to.Terminal() {
		q.quotas.release(j.Tenant, 1)
	}
	return true
}

// Cancel moves one job to cancelled: immediately when queued, via context
// cancellation when running (the worker then completes the bookkeeping).
// Cancelling a job shared by several batches cancels it for all of them;
// terminal jobs are left untouched.
func (q *Queue) Cancel(jobID string) error {
	q.mu.Lock()
	j, ok := q.jobs[jobID]
	q.mu.Unlock()
	if !ok {
		return ErrNotFound
	}
	q.cancelJob(j)
	return nil
}

// cancelJob implements Cancel for a resolved job.
func (q *Queue) cancelJob(j *Job) {
	j.mu.Lock()
	j.cancelled = true
	j.mu.Unlock()
	when := q.now()
	if q.transitionJob(j, StateCancelled, func() {
		j.err = context.Canceled
		j.doneAt = when
	}) {
		// If the job was running, unwind its executor; the worker's own
		// terminal transition will then be a no-op.
		j.mu.Lock()
		cancel := j.cancel
		j.mu.Unlock()
		if cancel != nil {
			cancel()
		}
	}
}

// CancelBatch cancels every non-terminal job of a batch.
func (q *Queue) CancelBatch(batchID string) error {
	q.mu.Lock()
	b, ok := q.batches[batchID]
	var jobs []*Job
	if ok {
		jobs = append(jobs, b.jobs...)
	}
	q.mu.Unlock()
	if !ok {
		return ErrNotFound
	}
	for _, j := range jobs {
		q.cancelJob(j)
	}
	return nil
}

// Batch returns the status of one batch.
func (q *Queue) Batch(batchID string) (BatchStatus, bool) {
	now := q.now()
	q.mu.Lock()
	defer q.mu.Unlock()
	q.sweepLocked(now)
	b, ok := q.batches[batchID]
	if !ok {
		return BatchStatus{}, false
	}
	return q.batchStatusLocked(b, now), true
}

// Job resolves one job of one batch; ok is false when either is unknown
// or the job does not belong to the batch.
func (q *Queue) Job(batchID, jobID string) (*Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	b, ok := q.batches[batchID]
	if !ok {
		return nil, false
	}
	j, ok := q.jobs[jobID]
	if !ok {
		return nil, false
	}
	for _, owned := range b.jobs {
		if owned == j {
			return j, true
		}
	}
	return nil, false
}

// batchStatusLocked assembles a BatchStatus; caller holds q.mu.
func (q *Queue) batchStatusLocked(b *batch, now time.Time) BatchStatus {
	st := BatchStatus{
		ID:     b.id,
		Tenant: b.tenant,
		JobIDs: append([]string(nil), b.jobIDs...),
		Counts: make(map[State]int),
		Done:   true,
	}
	for _, j := range b.jobs {
		snap := j.Snapshot(now)
		st.Jobs = append(st.Jobs, snap)
		st.Counts[snap.State]++
		if !snap.State.Terminal() {
			st.Done = false
		}
	}
	return st
}

// Subscribe registers a listener for the batch's job transitions. The
// channel is buffered; events overflowing a slow listener are dropped
// (poll Batch to recover). The returned stop function unregisters and
// must be called exactly once.
func (q *Queue) Subscribe(batchID string) (<-chan Event, func(), bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	b, ok := q.batches[batchID]
	if !ok {
		return nil, nil, false
	}
	s := &subscriber{batchID: b.id, ch: make(chan Event, 4*len(b.jobs)+16)}
	q.subs = append(q.subs, s)
	stop := func() {
		q.mu.Lock()
		for i, cur := range q.subs {
			if cur == s {
				q.subs = append(q.subs[:i], q.subs[i+1:]...)
				break
			}
		}
		q.mu.Unlock()
	}
	return s.ch, stop, true
}

// Depth returns the queued-job gauge (jobs admitted but not yet running),
// the serving layer's backpressure signal.
func (q *Queue) Depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.stats.Queued
}

// Stats returns a consistent snapshot of the queue counters.
func (q *Queue) Stats() Stats {
	q.mu.Lock()
	defer q.mu.Unlock()
	st := q.stats
	st.Live = q.live
	return st
}

// sweepLocked drops batches (and jobs no batch references any more) whose
// retention TTL has expired; caller holds q.mu. A job shared with a live
// batch stays until its last owner expires.
func (q *Queue) sweepLocked(now time.Time) {
	cutoff := now.Add(-q.cfg.ResultTTL)
	for id, b := range q.batches {
		if b.doneAt.IsZero() || b.doneAt.After(cutoff) {
			continue
		}
		delete(q.batches, id)
		for _, j := range b.jobs {
			owners := q.owners[j.ID]
			for i, cur := range owners {
				if cur == b {
					owners = append(owners[:i], owners[i+1:]...)
					break
				}
			}
			if len(owners) == 0 {
				delete(q.owners, j.ID)
				delete(q.jobs, j.ID)
				if q.index[j.Key] == j {
					delete(q.index, j.Key)
				}
			} else {
				q.owners[j.ID] = owners
			}
		}
	}
}
