package jobs

import "context"

// jobCtxKey carries the executing job in the executor's context.
type jobCtxKey struct{}

// withJob installs j in ctx; the queue does this before every execution.
func withJob(ctx context.Context, j *Job) context.Context {
	return context.WithValue(ctx, jobCtxKey{}, j)
}

// JobFrom returns the job the current executor invocation is running, or
// nil outside an executor. Deeply nested code — progress callbacks, cache
// layers — uses it to publish Job.SetPercent without threading the job
// through every signature.
func JobFrom(ctx context.Context) *Job {
	j, _ := ctx.Value(jobCtxKey{}).(*Job)
	return j
}
