package cli

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"

	"github.com/ramp-sim/ramp/internal/sched"
)

func TestSignalContextCancelStops(t *testing.T) {
	ctx, stop := SignalContext(context.Background())
	if err := ctx.Err(); err != nil {
		t.Fatalf("fresh signal context already cancelled: %v", err)
	}
	stop()
	<-ctx.Done()
}

func TestProgressPrinterFormat(t *testing.T) {
	var buf bytes.Buffer
	p := ProgressPrinter(&buf)
	p(sched.Progress{Task: "timing/0/gcc", Stage: "timing", Done: 1, Total: 4, StageDone: 1, StageTotal: 2})
	p(sched.Progress{Task: "base/0/gcc", Stage: "base", Err: errors.New("boom"), Done: 2, Total: 4, StageDone: 1, StageTotal: 2})
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("wrote %d lines, want 2: %q", len(lines), buf.String())
	}
	if !strings.Contains(lines[0], "timing/0/gcc") || strings.Contains(lines[0], "FAILED") {
		t.Errorf("success line malformed: %q", lines[0])
	}
	if !strings.Contains(lines[1], "FAILED: boom") {
		t.Errorf("failure line malformed: %q", lines[1])
	}
}
