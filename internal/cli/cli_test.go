package cli

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"github.com/ramp-sim/ramp/internal/sched"
	"log/slog"
	"strings"
	"testing"
)

func TestSignalContextCancelStops(t *testing.T) {
	ctx, stop := SignalContext(context.Background())
	if err := ctx.Err(); err != nil {
		t.Fatalf("fresh signal context already cancelled: %v", err)
	}
	stop()
	<-ctx.Done()
}

func TestProgressPrinterFormat(t *testing.T) {
	var buf bytes.Buffer
	p := ProgressPrinter(&buf)
	p(sched.Progress{Task: "timing/0/gcc", Stage: "timing", Done: 1, Total: 4, StageDone: 1, StageTotal: 2})
	p(sched.Progress{Task: "base/0/gcc", Stage: "base", Err: errors.New("boom"), Done: 2, Total: 4, StageDone: 1, StageTotal: 2})
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("wrote %d lines, want 2: %q", len(lines), buf.String())
	}
	if !strings.Contains(lines[0], "timing/0/gcc") || strings.Contains(lines[0], "FAILED") {
		t.Errorf("success line malformed: %q", lines[0])
	}
	if !strings.Contains(lines[1], "FAILED: boom") {
		t.Errorf("failure line malformed: %q", lines[1])
	}
}

func TestLogFlagsBuildLoggers(t *testing.T) {
	for _, tc := range []struct {
		level, format string
		ok            bool
	}{
		{"info", "text", true},
		{"debug", "json", true},
		{"loud", "text", false},
		{"info", "yaml", false},
	} {
		fs := flag.NewFlagSet("x", flag.ContinueOnError)
		lf := RegisterLogFlags(fs)
		if err := fs.Parse([]string{"-log-level", tc.level, "-log-format", tc.format}); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		logger, err := lf.Logger(&buf)
		if tc.ok != (err == nil) {
			t.Errorf("level=%s format=%s: err = %v, want ok=%v", tc.level, tc.format, err, tc.ok)
			continue
		}
		if tc.ok {
			logger.Info("probe")
			if buf.Len() == 0 {
				t.Errorf("level=%s format=%s: logger wrote nothing", tc.level, tc.format)
			}
		}
	}
}

func TestSlogProgressRecords(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, nil))
	p := SlogProgress(logger)
	p(sched.Progress{Task: "timing/0/gcc", Stage: "timing", Done: 1, Total: 4})
	p(sched.Progress{Task: "base/0/gcc", Stage: "base", Err: errors.New("boom"), Done: 2, Total: 4})
	out := buf.String()
	if !strings.Contains(out, "task done") || !strings.Contains(out, "timing/0/gcc") {
		t.Errorf("success record malformed: %q", out)
	}
	if !strings.Contains(out, "task failed") || !strings.Contains(out, "boom") {
		t.Errorf("failure record malformed: %q", out)
	}
}
