// Package cli holds the execution wiring every ramp command shares:
// signal-driven cancellation and scheduler progress reporting. rampsim,
// ramplife, and rampd all build on it so the behaviour (which signals
// cancel, what a progress line looks like) stays identical across tools.
package cli

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"os/signal"
	"syscall"

	"github.com/ramp-sim/ramp/internal/obs"
	"github.com/ramp-sim/ramp/internal/sched"
)

// SignalContext returns a context cancelled by SIGINT or SIGTERM, and the
// stop function releasing the signal registration. A second signal after
// cancellation kills the process via Go's default disposition, so a hung
// drain can always be escalated interactively.
func SignalContext(parent context.Context) (context.Context, context.CancelFunc) {
	return signal.NotifyContext(parent, os.Interrupt, syscall.SIGTERM)
}

// ProgressPrinter returns a sched progress callback writing one line per
// finished task. The callback runs on worker goroutines; each line is a
// single Fprintf so concurrent writes never interleave mid-row.
func ProgressPrinter(w io.Writer) func(sched.Progress) {
	return func(p sched.Progress) {
		status := ""
		if p.Err != nil {
			status = "  FAILED: " + p.Err.Error()
		}
		fmt.Fprintf(w, "[%3d/%3d] %-7s %-3d/%-3d %s%s\n",
			p.Done, p.Total, p.Stage, p.StageDone, p.StageTotal, p.Task, status)
	}
}

// StderrProgress is ProgressPrinter(os.Stderr), the flag-enabled default
// sink of every command.
func StderrProgress() func(sched.Progress) { return ProgressPrinter(os.Stderr) }

// LogFlags carries the logging flags every ramp command shares. Register
// with RegisterLogFlags, then build the configured logger with Logger.
type LogFlags struct {
	Level  string
	Format string
}

// RegisterLogFlags installs -log-level and -log-format on fs with the
// stack-wide defaults (info, text).
func RegisterLogFlags(fs *flag.FlagSet) *LogFlags {
	lf := &LogFlags{}
	fs.StringVar(&lf.Level, "log-level", "info", "log verbosity: debug, info, warn, or error")
	fs.StringVar(&lf.Format, "log-format", "text", "log record format: text or json")
	return lf
}

// Logger builds the *slog.Logger the flags describe, writing to w through
// a locked writer so records from concurrent goroutines never interleave.
func (lf *LogFlags) Logger(w io.Writer) (*slog.Logger, error) {
	level, err := obs.ParseLogLevel(lf.Level)
	if err != nil {
		return nil, err
	}
	return obs.NewLogger(w, level, lf.Format)
}

// SlogProgress returns a sched progress callback that emits one log record
// per finished task through logger. Because the logger serialises writes,
// progress reports and other log output share stderr without interleaving
// mid-line — the failure mode of writing both streams raw.
func SlogProgress(logger *slog.Logger) func(sched.Progress) {
	return func(p sched.Progress) {
		if p.Err != nil {
			logger.Warn("task failed", "task", p.Task, "stage", p.Stage,
				"done", p.Done, "total", p.Total, "error", p.Err.Error())
			return
		}
		logger.Info("task done", "task", p.Task, "stage", p.Stage,
			"done", p.Done, "total", p.Total,
			"stage_done", p.StageDone, "stage_total", p.StageTotal)
	}
}
