// Package cli holds the execution wiring every ramp command shares:
// signal-driven cancellation and scheduler progress reporting. rampsim,
// ramplife, and rampd all build on it so the behaviour (which signals
// cancel, what a progress line looks like) stays identical across tools.
package cli

import (
	"context"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"github.com/ramp-sim/ramp/internal/sched"
)

// SignalContext returns a context cancelled by SIGINT or SIGTERM, and the
// stop function releasing the signal registration. A second signal after
// cancellation kills the process via Go's default disposition, so a hung
// drain can always be escalated interactively.
func SignalContext(parent context.Context) (context.Context, context.CancelFunc) {
	return signal.NotifyContext(parent, os.Interrupt, syscall.SIGTERM)
}

// ProgressPrinter returns a sched progress callback writing one line per
// finished task. The callback runs on worker goroutines; each line is a
// single Fprintf so concurrent writes never interleave mid-row.
func ProgressPrinter(w io.Writer) func(sched.Progress) {
	return func(p sched.Progress) {
		status := ""
		if p.Err != nil {
			status = "  FAILED: " + p.Err.Error()
		}
		fmt.Fprintf(w, "[%3d/%3d] %-7s %-3d/%-3d %s%s\n",
			p.Done, p.Total, p.Stage, p.StageDone, p.StageTotal, p.Task, status)
	}
}

// StderrProgress is ProgressPrinter(os.Stderr), the flag-enabled default
// sink of every command.
func StderrProgress() func(sched.Progress) { return ProgressPrinter(os.Stderr) }
