package power

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/ramp-sim/ramp/internal/floorplan"
	"github.com/ramp-sim/ramp/internal/microarch"
	"github.com/ramp-sim/ramp/internal/scaling"
)

func newBaseModel(t *testing.T) *Model {
	t.Helper()
	m, err := NewModel(DefaultParams(), scaling.Base(), floorplan.POWER4().Areas())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func techModel(t *testing.T, name string) *Model {
	t.Helper()
	tech, err := scaling.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	fp, err := floorplan.POWER4().Scaled(tech.RelArea)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewModel(DefaultParams(), tech, fp.Areas())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestDefaultParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParamsValidateRejections(t *testing.T) {
	p := DefaultParams()
	p.PeakDynamicW[0] = -1
	if err := p.Validate(); err == nil {
		t.Error("negative peak accepted")
	}
	p = DefaultParams()
	p.GatingFloor = 1.0
	if err := p.Validate(); err == nil {
		t.Error("gating floor 1.0 accepted")
	}
	p = DefaultParams()
	p.Beta = -0.1
	if err := p.Validate(); err == nil {
		t.Error("negative beta accepted")
	}
}

func TestNewModelRejectsBadInputs(t *testing.T) {
	if _, err := NewModel(DefaultParams(), scaling.Base(), []float64{1, 2}); err == nil {
		t.Error("wrong area count accepted")
	}
	areas := floorplan.POWER4().Areas()
	areas[3] = 0
	if _, err := NewModel(DefaultParams(), scaling.Base(), areas); err == nil {
		t.Error("zero area accepted")
	}
	var badTech scaling.Technology
	if _, err := NewModel(DefaultParams(), badTech, floorplan.POWER4().Areas()); err == nil {
		t.Error("invalid technology accepted")
	}
}

func TestIdleDynamicPowerIsGatingFloor(t *testing.T) {
	m := newBaseModel(t)
	var zeroAF [microarch.NumStructures]float64
	dyn := m.Dynamic(zeroAF)
	p := DefaultParams()
	for i := range dyn {
		want := p.PeakDynamicW[i] * p.GatingFloor
		if math.Abs(dyn[i]-want) > 1e-12 {
			t.Errorf("idle %v = %v W, want %v", microarch.StructureID(i), dyn[i], want)
		}
	}
}

func TestFullActivityIsPeak(t *testing.T) {
	m := newBaseModel(t)
	var af [microarch.NumStructures]float64
	for i := range af {
		af[i] = 1
	}
	dyn := m.Dynamic(af)
	p := DefaultParams()
	for i := range dyn {
		if math.Abs(dyn[i]-p.PeakDynamicW[i]) > 1e-12 {
			t.Errorf("peak %v = %v W, want %v", microarch.StructureID(i), dyn[i], p.PeakDynamicW[i])
		}
	}
}

func TestDynamicClampsActivity(t *testing.T) {
	m := newBaseModel(t)
	var af [microarch.NumStructures]float64
	af[0] = 1.7
	af[1] = -0.3
	dyn := m.Dynamic(af)
	p := DefaultParams()
	if dyn[0] != p.PeakDynamicW[0] {
		t.Errorf("AF > 1 not clamped: %v", dyn[0])
	}
	if math.Abs(dyn[1]-p.PeakDynamicW[1]*p.GatingFloor) > 1e-12 {
		t.Errorf("AF < 0 not clamped: %v", dyn[1])
	}
}

func TestDynamicMonotonicInActivity(t *testing.T) {
	m := newBaseModel(t)
	f := func(a, b float64) bool {
		a, b = math.Abs(math.Mod(a, 1)), math.Abs(math.Mod(b, 1))
		if a > b {
			a, b = b, a
		}
		var afa, afb [microarch.NumStructures]float64
		for i := range afa {
			afa[i], afb[i] = a, b
		}
		da, db := m.Dynamic(afa), m.Dynamic(afb)
		for i := range da {
			if da[i] > db[i]+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLeakageAtReferenceMatchesTable2(t *testing.T) {
	// Table 2: 0.04 W/mm² at 383K over an 81mm² die → 3.24W total.
	m := newBaseModel(t)
	var temps [microarch.NumStructures]float64
	for i := range temps {
		temps[i] = LeakageRefK
	}
	leak := m.Leakage(temps)
	var sum float64
	for _, w := range leak {
		sum += w
	}
	if math.Abs(sum-3.24) > 1e-9 {
		t.Fatalf("leakage at 383K = %v W, want 3.24", sum)
	}
}

func TestLeakageTemperatureDependence(t *testing.T) {
	// P(T)/P(383) = e^{0.017(T−383)} (§4.2).
	m := newBaseModel(t)
	base := m.LeakageAt(microarch.StructLSU, 383)
	hot := m.LeakageAt(microarch.StructLSU, 403)
	want := math.Exp(0.017 * 20)
	if math.Abs(hot/base-want) > 1e-9 {
		t.Fatalf("leakage ratio over 20K = %v, want %v", hot/base, want)
	}
	cold := m.LeakageAt(microarch.StructLSU, 363)
	if cold >= base {
		t.Fatal("leakage must fall below reference at lower temperature")
	}
}

func TestDynamicScalingAcrossTechnologies(t *testing.T) {
	// Per-structure dynamic power must scale exactly by C_rel(V/V0)²(f/f0).
	var af [microarch.NumStructures]float64
	for i := range af {
		af[i] = 0.5
	}
	base := newBaseModel(t)
	baseDyn := base.Dynamic(af)
	for _, name := range []string{"130nm", "90nm", "65nm (0.9V)", "65nm (1.0V)"} {
		m := techModel(t, name)
		scale := m.Tech().DynamicPowerScale()
		dyn := m.Dynamic(af)
		for i := range dyn {
			if math.Abs(dyn[i]-baseDyn[i]*scale) > 1e-12 {
				t.Errorf("%s %v: dynamic %v, want %v", name, microarch.StructureID(i),
					dyn[i], baseDyn[i]*scale)
			}
		}
	}
}

func TestLeakageGrowsWithScalingDespiteSmallerArea(t *testing.T) {
	// Total leakage at 383K: 81·relArea·density. Table 4 densities outpace
	// area shrinkage, so chip leakage rises monotonically.
	var prev float64
	for _, name := range []string{"180nm", "130nm", "90nm", "65nm (0.9V)", "65nm (1.0V)"} {
		m := techModel(t, name)
		var temps [microarch.NumStructures]float64
		for i := range temps {
			temps[i] = LeakageRefK
		}
		var sum float64
		for _, w := range m.Leakage(temps) {
			sum += w
		}
		if sum <= prev {
			t.Errorf("%s leakage %v W not above previous %v", name, sum, prev)
		}
		prev = sum
	}
}

func TestTotalIsDynamicPlusLeakage(t *testing.T) {
	m := newBaseModel(t)
	var af, temps [microarch.NumStructures]float64
	for i := range af {
		af[i] = 0.3
		temps[i] = 360
	}
	per, sum := m.Total(af, temps)
	dyn := m.Dynamic(af)
	var check float64
	for i := range per {
		want := dyn[i] + m.LeakageAt(microarch.StructureID(i), temps[i])
		if math.Abs(per[i]-want) > 1e-12 {
			t.Errorf("structure %v total %v, want %v", microarch.StructureID(i), per[i], want)
		}
		check += per[i]
	}
	if math.Abs(sum-check) > 1e-9 {
		t.Fatalf("sum %v != Σ per-structure %v", sum, check)
	}
}

func TestSetAppScale(t *testing.T) {
	m := newBaseModel(t)
	var af [microarch.NumStructures]float64
	for i := range af {
		af[i] = 0.4
	}
	before := m.Dynamic(af)
	if err := m.SetAppScale(1.1); err != nil {
		t.Fatal(err)
	}
	after := m.Dynamic(af)
	for i := range after {
		if math.Abs(after[i]-before[i]*1.1) > 1e-12 {
			t.Fatalf("app scale not applied to %v", microarch.StructureID(i))
		}
	}
	if err := m.SetAppScale(0); err == nil {
		t.Fatal("zero app scale accepted")
	}
}

func TestBasePowerEnvelopeIsPlausible(t *testing.T) {
	// With suite-typical activity factors the 180nm chip should land in
	// the Table 3 envelope (26–32W total at operating temperature).
	m := newBaseModel(t)
	af := [microarch.NumStructures]float64{0.15, 0.24, 0.15, 0.23, 0.13, 0.19, 0.06}
	var temps [microarch.NumStructures]float64
	for i := range temps {
		temps[i] = 355
	}
	_, sum := m.Total(af, temps)
	if sum < 24 || sum > 34 {
		t.Fatalf("typical 180nm total power = %.1f W, want ≈ 29 (Table 3)", sum)
	}
}
