// Package power implements the PowerTimer-like power model of the paper
// (§4.2): per-structure dynamic power driven by activity factors with
// realistic (imperfect) clock gating, plus area-proportional leakage power
// with the exponential temperature dependence of Heo et al. [7]:
//
//	P_leak(T) = P_leak(383K) · e^{β(T−383)},  β = 0.017
//
// Dynamic power is calibrated at the 180nm base point against the paper's
// Table 3 envelope and scaled across technologies as C_rel·(V/V₀)²·(f/f₀)
// (Table 4).
package power

import (
	"fmt"
	"math"

	"github.com/ramp-sim/ramp/internal/microarch"
	"github.com/ramp-sim/ramp/internal/scaling"
)

// Beta is the leakage-temperature curve-fitting constant from [7] (§4.2).
const Beta = 0.017

// LeakageRefK is the reference temperature (Kelvin) at which Table 4's
// leakage power densities are specified.
const LeakageRefK = 383.0

// Params configures the power model.
type Params struct {
	// PeakDynamicW is each structure's maximum dynamic power in watts at
	// the 180nm base point (V=1.3V, f=1.1GHz) with activity factor 1.
	PeakDynamicW [microarch.NumStructures]float64
	// GatingFloor is the fraction of peak dynamic power an idle structure
	// still burns under realistic clock gating (clock tree, latches).
	GatingFloor float64
	// Beta is the leakage-temperature exponent; defaults to Beta if zero.
	Beta float64
	// PowerGateIdle enables power gating of near-idle structures: when a
	// structure's activity factor is below PowerGateThreshold, its leakage
	// is cut to PowerGateResidual of nominal (header-switch off-state
	// leakage) and its dynamic floor is removed. Off for the paper's base
	// machine; provided as a leakage/reliability mitigation study for the
	// scaled nodes, where leakage dominates idle power.
	PowerGateIdle bool
	// PowerGateThreshold is the activity factor below which a structure is
	// considered gateable (default 0.01 when zero).
	PowerGateThreshold float64
	// PowerGateResidual is the fraction of leakage a gated structure still
	// draws (default 0.1 when zero).
	PowerGateResidual float64
}

// DefaultParams returns the 180nm calibration: per-structure peak dynamic
// powers chosen so the simulated SPEC suite reproduces the paper's Table 3
// power envelope (average total power 29.1W including leakage at operating
// temperature) with a 25% clock-gating floor, POWER4-style.
func DefaultParams() Params {
	var peak [microarch.NumStructures]float64
	peak[microarch.StructIFU] = 10.5
	peak[microarch.StructIDU] = 5.5
	peak[microarch.StructISU] = 12.5
	peak[microarch.StructFXU] = 12.5
	peak[microarch.StructFPU] = 12.5
	peak[microarch.StructLSU] = 14.0
	peak[microarch.StructBXU] = 4.5
	return Params{
		PeakDynamicW: peak,
		GatingFloor:  0.25,
		Beta:         Beta,
	}
}

// Validate checks the parameters.
func (p Params) Validate() error {
	for i, w := range p.PeakDynamicW {
		if w < 0 {
			return fmt.Errorf("power: negative peak power for %v", microarch.StructureID(i))
		}
	}
	if p.GatingFloor < 0 || p.GatingFloor >= 1 {
		return fmt.Errorf("power: gating floor %v outside [0,1)", p.GatingFloor)
	}
	if p.Beta < 0 {
		return fmt.Errorf("power: negative beta")
	}
	if p.PowerGateThreshold < 0 || p.PowerGateThreshold >= 1 {
		return fmt.Errorf("power: gate threshold %v outside [0,1)", p.PowerGateThreshold)
	}
	if p.PowerGateResidual < 0 || p.PowerGateResidual > 1 {
		return fmt.Errorf("power: gate residual %v outside [0,1]", p.PowerGateResidual)
	}
	return nil
}

// gateThreshold and gateResidual return the effective gating parameters.
func (p Params) gateThreshold() float64 {
	if p.PowerGateThreshold == 0 {
		return 0.01
	}
	return p.PowerGateThreshold
}

func (p Params) gateResidual() float64 {
	if p.PowerGateResidual == 0 {
		return 0.1
	}
	return p.PowerGateResidual
}

// Model evaluates per-structure power at one technology point.
type Model struct {
	params   Params
	tech     scaling.Technology
	dynScale float64
	// areasMm2 is the per-structure area at this technology, used for
	// leakage.
	areasMm2 [microarch.NumStructures]float64
	// appScale is a per-application circuit-calibration factor applied to
	// dynamic power (stands in for per-benchmark circuit-level detail a
	// 7-structure activity model cannot capture); 1.0 when unused.
	appScale float64
}

// NewModel builds a power model for one technology point. areasMm2 are the
// structure areas at that technology (i.e. already scaled by RelArea).
func NewModel(params Params, tech scaling.Technology, areasMm2 []float64) (*Model, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if err := tech.Validate(); err != nil {
		return nil, err
	}
	if len(areasMm2) != microarch.NumStructures {
		return nil, fmt.Errorf("power: got %d areas, want %d", len(areasMm2), microarch.NumStructures)
	}
	if params.Beta == 0 {
		params.Beta = Beta
	}
	m := &Model{
		params:   params,
		tech:     tech,
		dynScale: tech.DynamicPowerScale(),
		appScale: 1.0,
	}
	for i, a := range areasMm2 {
		if a <= 0 {
			return nil, fmt.Errorf("power: non-positive area for %v", microarch.StructureID(i))
		}
		m.areasMm2[i] = a
	}
	return m, nil
}

// SetAppScale installs a per-application dynamic-power calibration factor.
func (m *Model) SetAppScale(s float64) error {
	if s <= 0 {
		return fmt.Errorf("power: app scale must be positive, got %v", s)
	}
	m.appScale = s
	return nil
}

// Dynamic returns each structure's dynamic power in watts for the given
// activity factors: peak · (floor + (1−floor)·AF), scaled to the model's
// technology and application.
func (m *Model) Dynamic(af [microarch.NumStructures]float64) [microarch.NumStructures]float64 {
	var out [microarch.NumStructures]float64
	f := m.params.GatingFloor
	for i, peak := range m.params.PeakDynamicW {
		a := af[i]
		if a < 0 {
			a = 0
		}
		if a > 1 {
			a = 1
		}
		if m.params.PowerGateIdle && a < m.params.gateThreshold() {
			// A power-gated structure draws no dynamic power at all: the
			// clock-tree floor is behind the header switch.
			out[i] = 0
			continue
		}
		out[i] = peak * (f + (1-f)*a) * m.dynScale * m.appScale
	}
	return out
}

// LeakageActive returns one structure's leakage power at temperature tK
// given its current activity factor: power-gated structures (when enabled
// and near-idle) draw only the off-state residual.
func (m *Model) LeakageActive(s microarch.StructureID, tK, af float64) float64 {
	leak := m.LeakageAt(s, tK)
	if m.params.PowerGateIdle && af < m.params.gateThreshold() {
		return leak * m.params.gateResidual()
	}
	return leak
}

// DynamicAt returns per-structure dynamic power at a DVS operating point
// that deviates from the technology nominal: the usual activity-gated
// power additionally scaled by (V/Vnom)²·(f/fnom). Used by the dynamic
// reliability manager (internal/drm).
func (m *Model) DynamicAt(af [microarch.NumStructures]float64, vddV, freqGHz float64) [microarch.NumStructures]float64 {
	out := m.Dynamic(af)
	scale := (vddV / m.tech.VddV) * (vddV / m.tech.VddV) * (freqGHz / m.tech.FreqGHz)
	for i := range out {
		out[i] *= scale
	}
	return out
}

// LeakageAtV returns one structure's leakage power at temperature tK and
// supply voltage vddV, using a linear voltage derate around the nominal
// (leakage current is roughly proportional to V in the operating range).
func (m *Model) LeakageAtV(s microarch.StructureID, tK, vddV float64) float64 {
	return m.LeakageAt(s, tK) * vddV / m.tech.VddV
}

// Leakage returns each structure's leakage power in watts at the given
// per-structure temperatures (Kelvin).
func (m *Model) Leakage(tempK [microarch.NumStructures]float64) [microarch.NumStructures]float64 {
	var out [microarch.NumStructures]float64
	for i := range out {
		out[i] = m.LeakageAt(microarch.StructureID(i), tempK[i])
	}
	return out
}

// LeakageAt returns one structure's leakage power at temperature tK.
func (m *Model) LeakageAt(s microarch.StructureID, tK float64) float64 {
	return m.tech.LeakW383PerMm2 * m.areasMm2[s] * math.Exp(m.params.Beta*(tK-LeakageRefK))
}

// Total returns per-structure total power (dynamic + leakage) and the chip
// sum for the given activity factors and temperatures.
func (m *Model) Total(af, tempK [microarch.NumStructures]float64) (perStruct [microarch.NumStructures]float64, sum float64) {
	dyn := m.Dynamic(af)
	for i := range perStruct {
		perStruct[i] = dyn[i] + m.LeakageAt(microarch.StructureID(i), tempK[i])
		sum += perStruct[i]
	}
	return perStruct, sum
}

// Tech returns the technology point the model evaluates.
func (m *Model) Tech() scaling.Technology { return m.tech }

// AreasMm2 returns the per-structure areas the model uses for leakage.
func (m *Model) AreasMm2() [microarch.NumStructures]float64 { return m.areasMm2 }
