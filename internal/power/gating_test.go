package power

import (
	"math"
	"testing"

	"github.com/ramp-sim/ramp/internal/floorplan"
	"github.com/ramp-sim/ramp/internal/microarch"
	"github.com/ramp-sim/ramp/internal/scaling"
)

func gatedModel(t *testing.T) *Model {
	t.Helper()
	p := DefaultParams()
	p.PowerGateIdle = true
	tech, err := scaling.ByName("65nm (1.0V)")
	if err != nil {
		t.Fatal(err)
	}
	fp, err := floorplan.POWER4().Scaled(tech.RelArea)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewModel(p, tech, fp.Areas())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestGatingValidation(t *testing.T) {
	p := DefaultParams()
	p.PowerGateThreshold = 1.5
	if err := p.Validate(); err == nil {
		t.Error("threshold above 1 accepted")
	}
	p = DefaultParams()
	p.PowerGateResidual = -0.1
	if err := p.Validate(); err == nil {
		t.Error("negative residual accepted")
	}
}

func TestGatedIdleStructureDrawsNoDynamicPower(t *testing.T) {
	m := gatedModel(t)
	var af [microarch.NumStructures]float64
	af[microarch.StructFXU] = 0.4 // busy
	// Everything else idle (AF 0 < threshold).
	dyn := m.Dynamic(af)
	for i, w := range dyn {
		s := microarch.StructureID(i)
		if s == microarch.StructFXU {
			if w <= 0 {
				t.Errorf("busy FXU draws no power")
			}
			continue
		}
		if w != 0 {
			t.Errorf("gated %v draws %v W of dynamic power", s, w)
		}
	}
}

func TestGatedLeakageResidual(t *testing.T) {
	m := gatedModel(t)
	full := m.LeakageActive(microarch.StructFPU, 360, 0.5)
	gated := m.LeakageActive(microarch.StructFPU, 360, 0.0)
	if math.Abs(gated/full-0.1) > 1e-9 {
		t.Fatalf("gated leakage ratio = %v, want 0.1 residual", gated/full)
	}
	if full != m.LeakageAt(microarch.StructFPU, 360) {
		t.Fatal("active structure leakage must equal the ungated value")
	}
}

func TestGatingOffIsUngatedBehaviour(t *testing.T) {
	p := DefaultParams() // gating off
	tech := scaling.Base()
	m, err := NewModel(p, tech, floorplan.POWER4().Areas())
	if err != nil {
		t.Fatal(err)
	}
	var af [microarch.NumStructures]float64 // all idle
	dyn := m.Dynamic(af)
	for i, w := range dyn {
		want := p.PeakDynamicW[i] * p.GatingFloor
		if math.Abs(w-want) > 1e-12 {
			t.Fatalf("ungated idle power changed: %v vs %v", w, want)
		}
	}
	if got := m.LeakageActive(microarch.StructLSU, 360, 0); got != m.LeakageAt(microarch.StructLSU, 360) {
		t.Fatal("LeakageActive must be transparent with gating off")
	}
}

func TestGatingThresholdBoundary(t *testing.T) {
	m := gatedModel(t)
	var low, high [microarch.NumStructures]float64
	for i := range low {
		low[i] = 0.005  // below the 0.01 default threshold
		high[i] = 0.015 // above it
	}
	dLow, dHigh := m.Dynamic(low), m.Dynamic(high)
	for i := range dLow {
		if dLow[i] != 0 {
			t.Errorf("structure %d below threshold not gated", i)
		}
		if dHigh[i] == 0 {
			t.Errorf("structure %d above threshold gated", i)
		}
	}
}
