// Package phys provides physical constants and unit helpers shared by the
// power, thermal, and reliability models.
//
// All temperatures in this code base are absolute (Kelvin) unless a name
// explicitly says otherwise. All energies in the reliability models are in
// electron-volts, matching the units of the published RAMP activation
// energies, so the Boltzmann constant is exposed in eV/K.
package phys

const (
	// BoltzmannEV is the Boltzmann constant in electron-volts per Kelvin.
	// The RAMP activation energies (0.9 eV for EM and SM, and the TDDB
	// fitting parameters X, Y, Z) are specified in eV, so k is used in the
	// same unit system.
	BoltzmannEV = 8.617333262e-5

	// ZeroCelsiusK is 0°C expressed in Kelvin.
	ZeroCelsiusK = 273.15

	// SiliconConductivity is the thermal conductivity of silicon in W/(m·K),
	// the value used by HotSpot-class models.
	SiliconConductivity = 100.0

	// CopperConductivity is the thermal conductivity of the copper heat
	// spreader in W/(m·K).
	CopperConductivity = 400.0

	// SiliconVolumetricHeat is the volumetric heat capacity of silicon in
	// J/(m³·K).
	SiliconVolumetricHeat = 1.75e6

	// CopperVolumetricHeat is the volumetric heat capacity of copper in
	// J/(m³·K).
	CopperVolumetricHeat = 3.55e6
)

// CelsiusToKelvin converts a temperature in degrees Celsius to Kelvin.
func CelsiusToKelvin(c float64) float64 { return c + ZeroCelsiusK }

// KelvinToCelsius converts an absolute temperature in Kelvin to Celsius.
func KelvinToCelsius(k float64) float64 { return k - ZeroCelsiusK }

// HoursPerYear is the number of hours in a (365.25-day) year, used to
// convert between MTTF in years and FIT rates.
const HoursPerYear = 24 * 365.25

// FITFromMTTFHours converts a mean time to failure in hours to a failure
// rate in FITs (failures per 10⁹ device-hours). A non-positive MTTF yields
// +Inf-free behaviour by returning 0, which callers treat as "no data".
func FITFromMTTFHours(mttfHours float64) float64 {
	if mttfHours <= 0 {
		return 0
	}
	return 1e9 / mttfHours
}

// MTTFHoursFromFIT converts a FIT rate to mean time to failure in hours.
// A non-positive FIT rate returns 0.
func MTTFHoursFromFIT(fit float64) float64 {
	if fit <= 0 {
		return 0
	}
	return 1e9 / fit
}

// MTTFYearsFromFIT converts a FIT rate to mean time to failure in years.
func MTTFYearsFromFIT(fit float64) float64 {
	return MTTFHoursFromFIT(fit) / HoursPerYear
}
