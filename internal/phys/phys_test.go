package phys

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCelsiusKelvinRoundTrip(t *testing.T) {
	f := func(c float64) bool {
		if math.IsNaN(c) || math.IsInf(c, 0) {
			return true
		}
		got := KelvinToCelsius(CelsiusToKelvin(c))
		return math.Abs(got-c) < 1e-9*math.Max(1, math.Abs(c))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCelsiusToKelvinKnownPoints(t *testing.T) {
	tests := []struct {
		name string
		c    float64
		want float64
	}{
		{"freezing", 0, 273.15},
		{"boiling", 100, 373.15},
		{"hotspot ambient", 45, 318.15},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := CelsiusToKelvin(tt.c); math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("CelsiusToKelvin(%v) = %v, want %v", tt.c, got, tt.want)
			}
		})
	}
}

func TestFITMTTFReciprocity(t *testing.T) {
	f := func(fit float64) bool {
		fit = math.Abs(fit)
		if fit == 0 || math.IsInf(fit, 0) || math.IsNaN(fit) {
			return true
		}
		back := FITFromMTTFHours(MTTFHoursFromFIT(fit))
		return math.Abs(back-fit) < 1e-6*fit
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestThirtyYearMTTFIsAbout4000FIT(t *testing.T) {
	// The paper's calibration anchor: a 30-year MTTF corresponds to a total
	// FIT value of roughly 4000 (10⁹ / (30 years in hours)).
	fit := FITFromMTTFHours(30 * HoursPerYear)
	if fit < 3700 || fit > 3900 {
		t.Fatalf("30-year MTTF = %.0f FIT, want ≈ 3805 (paper rounds to 4000)", fit)
	}
}

func TestNonPositiveInputs(t *testing.T) {
	if got := FITFromMTTFHours(0); got != 0 {
		t.Errorf("FITFromMTTFHours(0) = %v, want 0", got)
	}
	if got := FITFromMTTFHours(-5); got != 0 {
		t.Errorf("FITFromMTTFHours(-5) = %v, want 0", got)
	}
	if got := MTTFHoursFromFIT(0); got != 0 {
		t.Errorf("MTTFHoursFromFIT(0) = %v, want 0", got)
	}
	if got := MTTFYearsFromFIT(-1); got != 0 {
		t.Errorf("MTTFYearsFromFIT(-1) = %v, want 0", got)
	}
}

func TestMTTFYearsFromFIT(t *testing.T) {
	years := MTTFYearsFromFIT(4000)
	if years < 28 || years > 29 {
		t.Fatalf("4000 FIT = %.2f years MTTF, want ≈ 28.5", years)
	}
}
