package ramp_test

import (
	"fmt"
	"os"

	ramp "github.com/ramp-sim/ramp"
)

// The five Table 4 technology points, in scaling order.
func ExampleTechnologies() {
	for _, tech := range ramp.Technologies() {
		fmt.Printf("%s: %.1fV %.2fGHz\n", tech.Name, tech.VddV, tech.FreqGHz)
	}
	// Output:
	// 180nm: 1.3V 1.10GHz
	// 130nm: 1.1V 1.35GHz
	// 90nm: 1.0V 1.65GHz
	// 65nm (0.9V): 0.9V 2.00GHz
	// 65nm (1.0V): 1.0V 2.00GHz
}

// The 16 SPEC2K benchmark profiles of Table 3.
func ExampleProfiles() {
	profs := ramp.Profiles()
	fmt.Println(len(profs), "benchmarks")
	fmt.Println(profs[0].Name, profs[0].Suite, profs[0].TargetIPC)
	fmt.Println(profs[15].Name, profs[15].Suite, profs[15].TargetIPC)
	// Output:
	// 16 benchmarks
	// ammp SpecFP 1.06
	// crafty SpecInt 2.25
}

// Table 1: the qualitative scaling-impact summary.
func ExampleTable1() {
	if err := ramp.Table1().Render(os.Stdout); err != nil {
		panic(err)
	}
	// Output:
	// Table 1: impact of scaling on MTTF
	// mech  temperature dependence  voltage dependence  feature size dependence
	// -------------------------------------------------------------------------
	// EM                 e^{Ea/kT}                   -                 w·h (κ²)
	// SM     |T-T0|^-m · e^{Ea/kT}                   -                        -
	// TDDB       e^{(X+Y/T+ZT)/kT}        (1/V)^{a-bT}           10^{Δtox/0.22}
	// TC                    1/ΔT^q                   -                        -
}

// Converting a failure rate to a lifetime.
func ExampleBreakdown() {
	var b ramp.Breakdown
	b.ByStructMech[0][ramp.EM] = 4000 // a 4000-FIT processor
	fmt.Printf("%.1f years\n", b.MTTFYears())
	// Output:
	// 28.5 years
}

// A daily duty cycle projected with Miner's rule.
func ExampleProjectAging() {
	s := ramp.AgingSchedule{Phases: []ramp.AgingPhase{
		{Name: "busy", HoursPerDay: 8, FIT: 9000},
		{Name: "idle", HoursPerDay: 16, FIT: 1500},
	}}
	proj, err := ramp.ProjectAging(s)
	if err != nil {
		panic(err)
	}
	fmt.Printf("effective FIT %.0f, lifetime %.1f years\n",
		proj.EffectiveFIT, proj.LifetimeYears)
	// Output:
	// effective FIT 4000, lifetime 28.5 years
}

// Rainflow cycle counting over a temperature trace.
func ExampleRainflow() {
	cycles := ramp.Rainflow([]float64{350, 360, 350, 360, 350})
	var total float64
	for _, c := range cycles {
		total += c.Count
	}
	fmt.Printf("%.1f cycles of %.0fK\n", total, cycles[0].RangeK)
	// Output:
	// 2.0 cycles of 10K
}
