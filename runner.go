package ramp

import (
	"context"
	"time"

	"github.com/ramp-sim/ramp/internal/core"
	"github.com/ramp-sim/ramp/internal/jobs"
	"github.com/ramp-sim/ramp/internal/obs"
	"github.com/ramp-sim/ramp/internal/sched"
	"github.com/ramp-sim/ramp/internal/sim"
)

// Staged-execution facade types.
type (
	// CacheOptions bounds a Runner's stage cache (in-memory LRU size per
	// stage plus an optional disk-spill directory).
	CacheOptions = sim.StageCacheOptions
	// StageCacheStats snapshots the three per-stage stores of a stage
	// cache (timing, thermal, reliability).
	StageCacheStats = sim.StageCacheStats
	// AppEvent is one completed (application × technology) cell of a
	// running study, delivered while the grid is still filling in.
	AppEvent = sim.AppEvent
	// MetricsRecorder observes scheduler lifecycle events (queue depth,
	// in-flight tasks) across the studies a Runner executes.
	MetricsRecorder = sched.Recorder
	// MetricsCounters is the standard atomic MetricsRecorder; share one
	// across Runners to aggregate.
	MetricsCounters = sched.Counters
	// RunRecord is one completed run as the cost ledger records it:
	// identity, configuration, and wall/CPU/stage/cache cost breakdowns.
	RunRecord = obs.RunRecord
	// RunFilter selects runs from the ledger (tenant, key, outcome, kind,
	// limit); the zero filter matches everything.
	RunFilter = obs.RunFilter
	// StageCost is one pipeline stage's aggregated cost within a run.
	StageCost = obs.StageCost
	// CacheCost is one stage cache's aggregated traffic within a run.
	CacheCost = obs.CacheCost
	// LedgerStats summarises a cost ledger's ring (appended, retained,
	// capacity, dropped tail events).
	LedgerStats = obs.LedgerStats
)

// Run-record outcome labels carried by RunRecord.Outcome.
const (
	// RunOK: the run completed successfully.
	RunOK = obs.RunOK
	// RunError: the run failed with a non-cancellation error.
	RunError = obs.RunError
	// RunCancelled: the run was cancelled before completing.
	RunCancelled = obs.RunCancelled
	// RunDeadline: the run exceeded its deadline.
	RunDeadline = obs.RunDeadline
)

// Cell provenance labels carried by AppEvent.Source and StudyEvent.Source.
const (
	// CellFromFITCache: the finished cell was served whole from the
	// reliability-stage cache.
	CellFromFITCache = sim.CellFromFITCache
	// CellFromThermalCache: the thermal series was reused; only the cheap
	// reliability accumulation ran.
	CellFromThermalCache = sim.CellFromThermalCache
	// CellComputed: the thermal transient (and possibly the timing
	// simulation) ran for this cell.
	CellComputed = sim.CellComputed
)

// Runner executes studies with a fixed execution policy — parallelism,
// progress reporting, metrics, and an optional stage cache — configured
// once through functional options. The zero policy (ramp.New() with no
// options) matches RunStudyContext with empty StudyOptions.
//
// A Runner is immutable after New and safe for concurrent use; concurrent
// studies share its stage cache, so overlapping requests deduplicate work
// at stage granularity.
type Runner struct {
	parallelism int
	progress    func(StudyProgress)
	metrics     MetricsRecorder
	cache       *sim.StageCache
	tracer      *Tracer
	batchOpts   *BatchOptions
	jobs        *jobs.Queue
	fidelity    *Fidelity
	mechanisms  []string
	ledger      *obs.Ledger
}

// Option configures a Runner. Options are applied in order; an option
// error aborts New.
type Option func(*Runner) error

// New builds a Runner from functional options.
//
//	runner, err := ramp.New(
//		ramp.WithParallelism(4),
//		ramp.WithCache(ramp.CacheOptions{Dir: ".ramp-cache"}),
//	)
func New(opts ...Option) (*Runner, error) {
	r := &Runner{}
	for _, opt := range opts {
		if err := opt(r); err != nil {
			return nil, err
		}
	}
	// The batch queue is built last so its executor sees the final policy
	// regardless of option order.
	if r.batchOpts != nil {
		if err := r.initBatchQueue(); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// WithParallelism bounds the number of concurrently executing study tasks;
// values < 1 (and the default) mean runtime.GOMAXPROCS(0). Parallelism
// never affects numerics — results are bit-identical at every level.
func WithParallelism(n int) Option {
	return func(r *Runner) error {
		r.parallelism = n
		return nil
	}
}

// WithProgress installs a per-task completion callback. fn is called from
// worker goroutines and must be safe for concurrent use.
func WithProgress(fn func(StudyProgress)) Option {
	return func(r *Runner) error {
		r.progress = fn
		return nil
	}
}

// WithMetrics installs a scheduler-lifecycle observer (e.g. a shared
// *MetricsCounters) spanning every study the Runner executes.
func WithMetrics(rec MetricsRecorder) Option {
	return func(r *Runner) error {
		r.metrics = rec
		return nil
	}
}

// WithCache attaches a content-addressed stage cache: timing artifacts per
// application, thermal series per (application × technology), finished
// cells per (application × technology × reliability constants). Warm
// entries short-circuit the corresponding stage, so a sweep that changes
// only reliability constants replays in a fraction of the cold time. With
// a non-empty Dir the cache additionally spills to disk and later
// processes start warm.
func WithCache(opts CacheOptions) Option {
	return func(r *Runner) error {
		cache, err := sim.NewStageCache(opts)
		if err != nil {
			return err
		}
		r.cache = cache
		return nil
	}
}

// WithTracer instruments every study the Runner executes: pipeline-stage
// and per-cell spans flow into the tracer's sink (e.g. a TraceCollector
// for Chrome-trace export). A nil tracer leaves execution untraced with
// zero overhead on the stage hot paths.
func WithTracer(t *Tracer) Option {
	return func(r *Runner) error {
		r.tracer = t
		return nil
	}
}

// WithFidelity sets the Runner's default fidelity mode, applied to every
// study whose Config leaves Fidelity nil. An explicit Config.Fidelity
// always wins. The fidelity participates in every content-addressed stage
// and result key, so a Runner serving mixed fidelities never cross-serves
// cached results. Passing nil (or a validation failure) rejects the
// option.
func WithFidelity(f *Fidelity) Option {
	return func(r *Runner) error {
		if err := f.Validate(); err != nil {
			return err
		}
		r.fidelity = f
		return nil
	}
}

// WithMechanisms sets the Runner's default failure-mechanism selection,
// applied to every study whose Config leaves Mechanisms empty. An explicit
// Config.Mechanisms always wins. Names resolve against the mechanism
// registry (RegisteredMechanisms lists them) and are canonicalised here —
// lower-cased, de-aliased, sorted, de-duplicated — so an unknown name
// rejects the option immediately and every spelling of one set shares
// cache entries. Passing the default four (in any order) is equivalent to
// not setting the option at all: keys and results stay byte-identical to
// an unconfigured Runner.
func WithMechanisms(names ...string) Option {
	return func(r *Runner) error {
		canon, err := core.CanonicalMechanismNames(names)
		if err != nil {
			return err
		}
		r.mechanisms = canon
		return nil
	}
}

// WithLedger attaches a bounded, concurrency-safe cost ledger: every
// Study, MCStudy, and StreamStudy appends one RunRecord — outcome, wall
// time, per-stage wall/CPU cost, stage-cache traffic — queryable through
// Runs. capacity bounds the ring (oldest records evict first); values
// < 1 select the default capacity.
func WithLedger(capacity int) Option {
	return func(r *Runner) error {
		if capacity < 1 {
			capacity = 0
		}
		r.ledger = obs.NewLedger(capacity)
		return nil
	}
}

// Runs returns recorded runs matching f, newest first. It returns nil
// when the Runner has no ledger attached (see WithLedger).
func (r *Runner) Runs(f RunFilter) []RunRecord {
	if r.ledger == nil {
		return nil
	}
	return r.ledger.Runs(f)
}

// LedgerStats snapshots the Runner's ledger; ok is false when no ledger
// is attached.
func (r *Runner) LedgerStats() (stats LedgerStats, ok bool) {
	if r.ledger == nil {
		return LedgerStats{}, false
	}
	return r.ledger.Stats(), true
}

// applyFidelity fills the Runner's default fidelity and mechanism
// selection into a config that does not set its own.
func (r *Runner) applyFidelity(cfg Config) Config {
	if cfg.Fidelity == nil && r.fidelity != nil {
		f := *r.fidelity
		cfg.Fidelity = &f
	}
	if len(cfg.Mechanisms) == 0 && len(r.mechanisms) > 0 {
		cfg.Mechanisms = append([]string(nil), r.mechanisms...)
	}
	return cfg
}

// traceCtx installs the Runner's tracer, if any, on the study context.
func (r *Runner) traceCtx(ctx context.Context) context.Context {
	if r.tracer != nil {
		return obs.WithTracer(ctx, r.tracer)
	}
	return ctx
}

// studyCtx prepares one run's context: the Runner's tracer, if any, plus
// — when a ledger is attached — a per-run stats sink that aggregates the
// run's spans into its eventual RunRecord.
func (r *Runner) studyCtx(ctx context.Context) (context.Context, *obs.RunStats) {
	if r.ledger == nil {
		return r.traceCtx(ctx), nil
	}
	stats := obs.NewRunStats()
	var sink obs.SpanSink = stats
	if r.tracer != nil {
		sink = obs.MultiSink(r.tracer.Sink(), stats)
	}
	return obs.WithTracer(ctx, obs.NewTracer(sink)), stats
}

// record appends one run to the Runner's ledger. No-op without a ledger.
func (r *Runner) record(kind, key string, cfg Config, nProfiles int,
	start time.Time, stats *obs.RunStats, err error) {
	if r.ledger == nil {
		return
	}
	fidelity := string(sim.FidelityExact)
	if cfg.Fidelity != nil && cfg.Fidelity.Mode != "" {
		fidelity = string(cfg.Fidelity.Mode)
	}
	rec := RunRecord{
		Kind:         kind,
		Key:          key,
		Fidelity:     fidelity,
		Mechanisms:   cfg.Mechanisms,
		Outcome:      obs.OutcomeFor(err),
		Start:        start.UTC(),
		WallMS:       float64(time.Since(start)) / float64(time.Millisecond),
		Instructions: cfg.Instructions * int64(nProfiles),
	}
	if err != nil {
		rec.Error = err.Error()
	}
	if stats != nil {
		stats.Fill(&rec)
	}
	r.ledger.Append(rec)
}

// options assembles the StudyOptions for one study run.
func (r *Runner) options(onApp func(AppEvent)) StudyOptions {
	return StudyOptions{
		Parallelism: r.parallelism,
		OnProgress:  r.progress,
		Metrics:     r.metrics,
		Cache:       r.cache,
		OnApp:       onApp,
	}
}

// Study executes the complete scaling study — timing per application,
// base-technology calibration, reliability qualification, every scaled
// technology point, and the worst-case analysis — under the Runner's
// execution policy. techs must start with the base (180nm) technology.
func (r *Runner) Study(ctx context.Context, cfg Config, profiles []Profile,
	techs []Technology) (*StudyResult, error) {
	cfg = r.applyFidelity(cfg)
	ctx, stats := r.studyCtx(ctx)
	start := time.Now()
	res, err := sim.RunStudyContext(ctx, cfg, profiles, techs, r.options(nil))
	key, _ := sim.StudyKey(cfg, profiles, techs)
	r.record("study", key, cfg, len(profiles), start, stats, err)
	return res, err
}

// MCStudy executes the scaling study (through the Runner's stage cache,
// so a warm cache reduces it to replaying cheap artifacts) and then fans
// Monte Carlo lifetime replicas for every (application × technology)
// cell across the Runner's scheduler pool, summarising each cell's
// lifetime distribution with percentile and mean confidence intervals.
//
// Replica streams are seeded per (root seed, cell, replica), so the
// result is byte-identical at every parallelism level. onEvent, when
// non-nil, receives incremental per-cell estimates while sampling runs;
// it is called from worker goroutines and must be safe for concurrent
// use. mcfg is normalized before use — zero fields take the documented
// defaults.
func (r *Runner) MCStudy(ctx context.Context, cfg Config, profiles []Profile,
	techs []Technology, mcfg MCConfig, onEvent func(MCEvent)) (*MCResult, error) {
	cfg = r.applyFidelity(cfg)
	ctx, stats := r.studyCtx(ctx)
	start := time.Now()
	res, err := sim.RunMCStudyContext(ctx, cfg, mcfg, profiles, techs, r.options(nil), onEvent)
	key, _ := sim.MCStudyKey(cfg, mcfg.Normalized(), profiles, techs)
	r.record("mc", key, cfg, len(profiles), start, stats, err)
	return res, err
}

// Timing executes only the timing stage for one profile, through the
// Runner's stage cache when one is attached. The returned trace is
// immutable and may be shared across concurrent evaluations.
func (r *Runner) Timing(ctx context.Context, cfg Config, prof Profile) (*ActivityTrace, error) {
	return sim.RunTimingCachedContext(r.traceCtx(ctx), r.applyFidelity(cfg), prof, r.cache)
}

// CacheStats snapshots the Runner's stage cache. ok is false when the
// Runner has no cache attached.
func (r *Runner) CacheStats() (stats StageCacheStats, ok bool) {
	if r.cache == nil {
		return StageCacheStats{}, false
	}
	return r.cache.Stats(), true
}

// StudyEvent is one element of the stream produced by StreamStudy: either
// a completed (application × technology) cell (App != nil) or the single
// terminal event (Result or Err set) that precedes channel close.
type StudyEvent struct {
	// App is the completed cell, nil on the terminal event. Its RawFIT is
	// uncalibrated — qualification constants are only known once every
	// base cell has finished; apply Result.Constants (or
	// ReferenceConstants) to convert to absolute FIT.
	App *AppRun
	// Source is the cell's provenance (CellFromFITCache,
	// CellFromThermalCache, CellComputed); empty on the terminal event.
	Source string
	// CellsDone and CellsTotal count completed and scheduled cells at the
	// moment the event was emitted.
	CellsDone, CellsTotal int
	// Result is the complete study, set only on a successful terminal
	// event.
	Result *StudyResult
	// Err is the study failure, set only on a failed terminal event;
	// after cancellation it wraps ctx.Err().
	Err error
}

// StreamStudy runs Study incrementally: the returned channel yields one
// StudyEvent per completed (application × technology) cell as the grid
// fills in, then exactly one terminal event carrying the assembled
// StudyResult (or the study error), and closes.
//
// The stream is unbuffered: an unread event blocks the workers that
// produced it, so consume promptly or cancel ctx. Cancelling ctx mid-grid
// aborts the study — already-completed stages stay in the Runner's cache,
// so a repeated request resumes where the cancelled one left off.
func (r *Runner) StreamStudy(ctx context.Context, cfg Config, profiles []Profile,
	techs []Technology) (<-chan StudyEvent, error) {
	cfg = r.applyFidelity(cfg)
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ctx, stats := r.studyCtx(ctx)
	events := make(chan StudyEvent)
	onApp := func(ev AppEvent) {
		run := ev.Run
		select {
		case events <- StudyEvent{
			App:        &run,
			Source:     ev.Source,
			CellsDone:  ev.CellsDone,
			CellsTotal: ev.CellsTotal,
		}:
		case <-ctx.Done():
		}
	}
	go func() {
		defer close(events)
		start := time.Now()
		res, err := sim.RunStudyContext(ctx, cfg, profiles, techs, r.options(onApp))
		key, _ := sim.StudyKey(cfg, profiles, techs)
		r.record("study.stream", key, cfg, len(profiles), start, stats, err)
		term := StudyEvent{Result: res, Err: err}
		select {
		case events <- term:
		case <-ctx.Done():
			// The consumer is gone; still try to hand over the terminal
			// event without blocking so a draining reader sees it.
			select {
			case events <- term:
			default:
			}
		}
	}()
	return events, nil
}
