package ramp_test

import (
	"context"
	"errors"
	"testing"

	ramp "github.com/ramp-sim/ramp"
)

// TestRunnerLedger: WithLedger makes every Study/MCStudy/StreamStudy
// append one queryable RunRecord with outcome, per-stage costs, and cell
// counts — the programmatic face of the rampd ops plane.
func TestRunnerLedger(t *testing.T) {
	cfg, profiles, techs := runnerTestInputs(t)
	runner, err := ramp.New(ramp.WithParallelism(2), ramp.WithLedger(8))
	if err != nil {
		t.Fatal(err)
	}

	if _, err := runner.Study(context.Background(), cfg, profiles, techs); err != nil {
		t.Fatal(err)
	}
	if _, err := runner.MCStudy(context.Background(), cfg, profiles, techs,
		ramp.MCConfig{Samples: 200, Seed: 7}, nil); err != nil {
		t.Fatal(err)
	}
	events, err := runner.StreamStudy(context.Background(), cfg, profiles, techs)
	if err != nil {
		t.Fatal(err)
	}
	for range events {
	}

	stats, ok := runner.LedgerStats()
	if !ok || stats.Appended != 3 {
		t.Fatalf("ledger stats = %+v ok=%v, want 3 appended", stats, ok)
	}
	runs := runner.Runs(ramp.RunFilter{})
	if len(runs) != 3 {
		t.Fatalf("runs = %d, want 3", len(runs))
	}
	// Newest first: stream, mc, study.
	for i, kind := range []string{"study.stream", "mc", "study"} {
		if runs[i].Kind != kind {
			t.Errorf("runs[%d].Kind = %q, want %q", i, runs[i].Kind, kind)
		}
		if runs[i].Outcome != ramp.RunOK || runs[i].Key == "" || runs[i].WallMS < 0 {
			t.Errorf("runs[%d] incomplete: %+v", i, runs[i])
		}
	}
	study := runs[2]
	if study.Instructions != cfg.Instructions*int64(len(profiles)) {
		t.Errorf("instructions = %d, want %d", study.Instructions,
			cfg.Instructions*int64(len(profiles)))
	}
	if study.Cells != len(profiles)*len(techs) {
		t.Errorf("cells = %d, want %d", study.Cells, len(profiles)*len(techs))
	}
	if study.Stages["timing"].Count == 0 || study.CPUMS <= 0 {
		t.Errorf("study record lacks stage costs: %+v", study.Stages)
	}
	mc := runs[1]
	if mc.Replicas != 200*len(profiles)*len(techs) {
		t.Errorf("mc replicas = %d, want %d", mc.Replicas, 200*len(profiles)*len(techs))
	}

	// Kind filtering and the study/mc key spaces.
	if got := runner.Runs(ramp.RunFilter{Kind: "mc"}); len(got) != 1 {
		t.Errorf("kind=mc runs = %d, want 1", len(got))
	}
	if study.Key == mc.Key {
		t.Error("study and mc share a content key")
	}

	// A failed run is recorded with its outcome.
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := runner.Study(cancelled, cfg, profiles, techs); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled study err = %v", err)
	}
	if got := runner.Runs(ramp.RunFilter{Outcome: ramp.RunCancelled}); len(got) != 1 {
		t.Errorf("cancelled runs = %d, want 1", len(got))
	}
}

// TestRunnerWithoutLedger: the ledger is strictly opt-in — no option, no
// records, nil Runs, ok=false stats.
func TestRunnerWithoutLedger(t *testing.T) {
	cfg, profiles, techs := runnerTestInputs(t)
	runner, err := ramp.New(ramp.WithParallelism(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := runner.Study(context.Background(), cfg, profiles, techs); err != nil {
		t.Fatal(err)
	}
	if runs := runner.Runs(ramp.RunFilter{}); runs != nil {
		t.Errorf("Runs without a ledger = %v, want nil", runs)
	}
	if _, ok := runner.LedgerStats(); ok {
		t.Error("LedgerStats without a ledger reported ok")
	}
}
