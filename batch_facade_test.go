package ramp_test

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	ramp "github.com/ramp-sim/ramp"
)

// TestRunnerBatchFacade drives the whole batch surface of the Runner:
// submission with dedup, WaitBatch, JobResult equality with the
// synchronous API, and stats accounting.
func TestRunnerBatchFacade(t *testing.T) {
	cfg, profiles, techs := runnerTestInputs(t)
	runner, err := ramp.New(
		ramp.WithParallelism(2),
		ramp.WithBatchQueue(ramp.BatchOptions{Workers: 2}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer runner.Close()

	narrow := cfg
	narrow.Instructions = 20_000
	items := []ramp.BatchItem{
		{Kind: ramp.BatchStudy, Config: cfg, Profiles: profiles, Techs: techs},
		{Kind: ramp.BatchStudy, Config: narrow, Profiles: profiles, Techs: techs},
		{Kind: ramp.BatchStudy, Config: cfg, Profiles: profiles, Techs: techs}, // dup of [0]
	}
	st, err := runner.SubmitBatch("", items)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Jobs) != 2 {
		t.Fatalf("unique jobs = %d, want 2 after dedup", len(st.Jobs))
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	final, err := runner.WaitBatch(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !final.Done || final.Counts[ramp.JobDone] != 2 {
		t.Fatalf("final = done:%v counts:%+v, want 2 done", final.Done, final.Counts)
	}

	// The job's result must deeply equal the synchronous API's.
	res, ok := runner.JobResult(st.ID, final.Jobs[0].ID)
	if !ok {
		t.Fatal("done job has no result")
	}
	want, err := runner.Study(context.Background(), cfg, profiles, techs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, want) {
		t.Error("batch job result differs from Runner.Study for the same config")
	}

	stats, ok := runner.BatchStats()
	if !ok || stats.Submitted != 2 || stats.Deduped != 1 || stats.Done != 2 {
		t.Errorf("stats = %+v (ok %v), want submitted 2 / deduped 1 / done 2", stats, ok)
	}
}

// TestRunnerBatchMCJob runs a Monte Carlo item through the queue.
func TestRunnerBatchMCJob(t *testing.T) {
	cfg, profiles, techs := runnerTestInputs(t)
	runner, err := ramp.New(ramp.WithBatchQueue(ramp.BatchOptions{}))
	if err != nil {
		t.Fatal(err)
	}
	defer runner.Close()
	items := []ramp.BatchItem{{
		Kind: ramp.BatchMC, Config: cfg, Profiles: profiles[:1], Techs: techs,
		MC: ramp.MCConfig{Samples: 50, Seed: 11}.Normalized(),
	}}
	st, err := runner.SubmitBatch("mc-tenant", items)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	final, err := runner.WaitBatch(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.Counts[ramp.JobDone] != 1 {
		t.Fatalf("counts = %+v, want 1 done", final.Counts)
	}
	raw, ok := runner.JobResult(st.ID, final.Jobs[0].ID)
	if !ok {
		t.Fatal("mc job has no result")
	}
	mc, ok := raw.(*ramp.MCResult)
	if !ok || mc.TotalReplicas == 0 {
		t.Fatalf("mc result = %T %+v", raw, raw)
	}
}

// TestRunnerWithoutBatchQueue: the batch methods degrade to typed errors
// on a Runner constructed without WithBatchQueue.
func TestRunnerWithoutBatchQueue(t *testing.T) {
	runner, err := ramp.New()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := runner.SubmitBatch("", nil); !errors.Is(err, ramp.ErrNoBatchQueue) {
		t.Errorf("SubmitBatch err = %v, want ErrNoBatchQueue", err)
	}
	if _, ok := runner.BatchStatus("x"); ok {
		t.Error("BatchStatus ok on queue-less runner")
	}
	if err := runner.CancelBatch("x"); !errors.Is(err, ramp.ErrNoBatchQueue) {
		t.Errorf("CancelBatch err = %v, want ErrNoBatchQueue", err)
	}
	runner.Close() // must be a safe no-op
}
