package ramp_test

import (
	"strings"
	"testing"

	ramp "github.com/ramp-sim/ramp"
)

func TestPublicAPISurface(t *testing.T) {
	if got := len(ramp.Profiles()); got != 16 {
		t.Fatalf("Profiles() = %d entries, want 16", got)
	}
	if got := len(ramp.Technologies()); got != 5 {
		t.Fatalf("Technologies() = %d entries, want 5", got)
	}
	if ramp.BaseTechnology().Name != "180nm" {
		t.Fatalf("BaseTechnology() = %q", ramp.BaseTechnology().Name)
	}
	if ramp.NumMechanisms != 4 {
		t.Fatalf("NumMechanisms = %d", ramp.NumMechanisms)
	}
	if _, err := ramp.ProfileByName("gcc"); err != nil {
		t.Fatal(err)
	}
	if _, err := ramp.TechnologyByName("90nm"); err != nil {
		t.Fatal(err)
	}
	if err := ramp.DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPublicStaticTables(t *testing.T) {
	var sb strings.Builder
	if err := ramp.Table1().Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "TDDB") {
		t.Fatal("Table 1 missing TDDB row")
	}
	sb.Reset()
	if err := ramp.Table2(ramp.DefaultConfig().Machine).Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Reorder buffer") {
		t.Fatal("Table 2 missing ROB row")
	}
}

func TestPublicEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end study is slow; skipped with -short")
	}
	cfg := ramp.DefaultConfig()
	cfg.Instructions = 150_000
	profiles := ramp.Profiles()[:2]
	techs := ramp.Technologies()[:2]
	res, err := ramp.RunStudy(cfg, profiles, techs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Apps) != 4 {
		t.Fatalf("got %d app runs, want 4", len(res.Apps))
	}
	base := res.SuiteAverageFIT(0, 0)
	scaled := res.SuiteAverageFIT(1, 0)
	if scaled <= base {
		t.Fatalf("130nm FIT %.0f not above 180nm %.0f", scaled, base)
	}
	// Figures render from the public API.
	fig, err := ramp.Figure3(res, ramp.SuiteFP)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := fig.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "max (worst-case)") {
		t.Fatal("Figure 3 missing worst-case curve")
	}
}

func TestPublicTimingAndEvaluate(t *testing.T) {
	cfg := ramp.DefaultConfig()
	cfg.Instructions = 100_000
	prof, err := ramp.ProfileByName("mesa")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := ramp.RunTiming(cfg, prof)
	if err != nil {
		t.Fatal(err)
	}
	run, err := ramp.EvaluateTech(cfg, tr, ramp.BaseTechnology(), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if run.RawFIT.Total() <= 0 {
		t.Fatal("raw FIT must be positive")
	}
	mech := run.RawFIT.ByMechanism()
	for _, m := range []ramp.Mechanism{ramp.EM, ramp.SM, ramp.TDDB, ramp.TC} {
		if mech[m] <= 0 {
			t.Errorf("mechanism %v rate must be positive", m)
		}
	}
}
