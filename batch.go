package ramp

import (
	"context"
	"errors"
	"time"

	"github.com/ramp-sim/ramp/internal/jobs"
	"github.com/ramp-sim/ramp/internal/sim"
)

// Batch facade: submit many study/MC configurations at once and let the
// Runner's job queue execute them asynchronously — deduplicated by
// content address, bounded by a worker pool, with retry for transient
// failures and TTL'd retention of finished results. This is the library
// face of the same internal/jobs subsystem rampd serves as POST /v1/batch.

// Batch facade types.
type (
	// BatchItem is one study or MC configuration inside a batch; set Kind
	// to BatchStudy or BatchMC.
	BatchItem = sim.BatchItem
	// BatchStatus is a point-in-time view of one submitted batch.
	BatchStatus = jobs.BatchStatus
	// JobSnapshot is a point-in-time view of one job of a batch.
	JobSnapshot = jobs.Snapshot
	// JobState is a job's lifecycle state (JobQueued … JobCancelled).
	JobState = jobs.State
)

// Batch item kinds and job lifecycle states, re-exported for callers.
const (
	// BatchStudy marks a deterministic scaling study item.
	BatchStudy = sim.JobStudy
	// BatchMC marks a Monte Carlo lifetime study item.
	BatchMC = sim.JobMC

	JobQueued    = jobs.StateQueued
	JobRunning   = jobs.StateRunning
	JobDone      = jobs.StateDone
	JobFailed    = jobs.StateFailed
	JobCancelled = jobs.StateCancelled
)

// ErrNoBatchQueue is returned by the batch methods of a Runner built
// without WithBatchQueue.
var ErrNoBatchQueue = errors.New("ramp: runner has no batch queue; construct with WithBatchQueue")

// BatchOptions parameterises a Runner's batch queue. The zero value gives
// the documented defaults of the jobs subsystem: capacity 256, 4 workers,
// 3 attempts, 250ms doubling backoff, 15m retention, no tenant limits.
type BatchOptions struct {
	// Capacity bounds live (queued + running) jobs; excess submissions
	// fail whole.
	Capacity int
	// Workers is the executor pool size.
	Workers int
	// MaxAttempts bounds executions per job including the first.
	MaxAttempts int
	// RetryBackoff is the delay before a job's first retry, doubling per
	// attempt.
	RetryBackoff time.Duration
	// ResultTTL is how long finished batches stay queryable.
	ResultTTL time.Duration
	// TenantJobsPerSecond, TenantBurst, and TenantInflight are the
	// per-tenant admission quota (0 = unlimited).
	TenantJobsPerSecond float64
	TenantBurst         int
	TenantInflight      int
	// Retryable classifies executor errors as transient; nil retries
	// everything except context cancellation.
	Retryable func(error) bool
}

// WithBatchQueue attaches an asynchronous batch queue to the Runner;
// SubmitBatch, BatchStatus, WaitBatch, CancelBatch, and BatchStats then
// operate on it. Runners with a queue should be Closed when done to stop
// the worker pool.
func WithBatchQueue(opts BatchOptions) Option {
	return func(r *Runner) error {
		r.batchOpts = &opts
		return nil
	}
}

// initBatchQueue builds the jobs queue once every option has applied, so
// the executor observes the Runner's final policy (cache, parallelism,
// tracer).
func (r *Runner) initBatchQueue() error {
	opts := r.batchOpts
	retryable := opts.Retryable
	if retryable == nil {
		retryable = func(err error) bool { return !errors.Is(err, context.Canceled) }
	}
	q, err := jobs.New(jobs.Config{
		Capacity:     opts.Capacity,
		Workers:      opts.Workers,
		MaxAttempts:  opts.MaxAttempts,
		RetryBackoff: opts.RetryBackoff,
		ResultTTL:    opts.ResultTTL,
		Quota: jobs.QuotaConfig{
			JobsPerSecond: opts.TenantJobsPerSecond,
			Burst:         opts.TenantBurst,
			MaxInflight:   opts.TenantInflight,
		},
		Retryable: retryable,
	}, r.executeBatchItem)
	if err != nil {
		return err
	}
	r.jobs = q
	return nil
}

// executeBatchItem is the queue executor: one study or MC run under the
// Runner's execution policy, publishing cell-level progress on the job.
func (r *Runner) executeBatchItem(ctx context.Context, j *jobs.Job) (any, error) {
	item, ok := j.Payload.(BatchItem)
	if !ok {
		return nil, errors.New("ramp: job carries no batch item")
	}
	ctx = r.traceCtx(ctx)
	switch item.Kind {
	case BatchStudy:
		onApp := func(ev AppEvent) {
			if ev.CellsTotal > 0 {
				j.SetPercent(100 * float64(ev.CellsDone) / float64(ev.CellsTotal))
			}
		}
		return sim.RunStudyContext(ctx, item.Config, item.Profiles, item.Techs, r.options(onApp))
	case BatchMC:
		onEvent := func(ev MCEvent) {
			if ev.Final && ev.CellsTotal > 0 {
				j.SetPercent(100 * float64(ev.CellsDone) / float64(ev.CellsTotal))
			}
		}
		return sim.RunMCStudyContext(ctx, item.Config, item.MC, item.Profiles, item.Techs,
			r.options(nil), onEvent)
	default:
		return nil, errors.New("ramp: unknown batch item kind " + item.Kind)
	}
}

// SubmitBatch content-addresses items (sim.PlanBatch), deduplicates them
// within the batch and against live jobs, and enqueues the unique work for
// tenant ("" = "default"). Admission is all-or-nothing against capacity
// and the tenant's quota. The returned status is the batch's initial view.
func (r *Runner) SubmitBatch(tenant string, items []BatchItem) (BatchStatus, error) {
	if r.jobs == nil {
		return BatchStatus{}, ErrNoBatchQueue
	}
	if tenant == "" {
		tenant = "default"
	}
	plan, err := sim.PlanBatch(items)
	if err != nil {
		return BatchStatus{}, err
	}
	specs := make([]jobs.Spec, len(items))
	for i, item := range items {
		specs[i] = jobs.Spec{Key: plan.Keys[i], Kind: jobs.Kind(item.Kind), Payload: item}
	}
	return r.jobs.Submit(tenant, specs)
}

// BatchStatus returns the current view of one batch; ok is false when the
// ID is unknown or its retention TTL expired.
func (r *Runner) BatchStatus(id string) (BatchStatus, bool) {
	if r.jobs == nil {
		return BatchStatus{}, false
	}
	return r.jobs.Batch(id)
}

// JobResult returns the result of one finished job of a batch: a
// *StudyResult for study items, a *MCResult for MC items. ok is false
// until the job is done (or when either ID is unknown).
func (r *Runner) JobResult(batchID, jobID string) (any, bool) {
	if r.jobs == nil {
		return nil, false
	}
	j, ok := r.jobs.Job(batchID, jobID)
	if !ok {
		return nil, false
	}
	return j.Result()
}

// CancelBatch cancels every non-terminal job of a batch.
func (r *Runner) CancelBatch(id string) error {
	if r.jobs == nil {
		return ErrNoBatchQueue
	}
	return r.jobs.CancelBatch(id)
}

// WaitBatch blocks until every job of the batch is terminal (returning
// the final status) or ctx is cancelled (returning the last observed
// status and ctx's error).
func (r *Runner) WaitBatch(ctx context.Context, id string) (BatchStatus, error) {
	if r.jobs == nil {
		return BatchStatus{}, ErrNoBatchQueue
	}
	events, stop, ok := r.jobs.Subscribe(id)
	if !ok {
		return BatchStatus{}, errors.New("ramp: unknown batch " + id)
	}
	defer stop()
	// Poll as the fallback for events dropped past a slow listener.
	tick := time.NewTicker(50 * time.Millisecond)
	defer tick.Stop()
	for {
		st, ok := r.jobs.Batch(id)
		if !ok {
			return BatchStatus{}, errors.New("ramp: batch " + id + " expired while waiting")
		}
		if st.Done {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-events:
		case <-tick.C:
		}
	}
}

// BatchStats snapshots the queue's counters (gauges plus cumulative
// totals); ok is false without a batch queue.
func (r *Runner) BatchStats() (jobs.Stats, bool) {
	if r.jobs == nil {
		return jobs.Stats{}, false
	}
	return r.jobs.Stats(), true
}

// Close stops the batch queue's workers, cancelling running jobs. A no-op
// for Runners without a batch queue; the Runner's other methods remain
// usable afterwards.
func (r *Runner) Close() {
	if r.jobs != nil {
		r.jobs.Close()
	}
}
