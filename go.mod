module github.com/ramp-sim/ramp

go 1.22
