// Ablation benchmarks for the scaling-specific design choices DESIGN.md
// calls out: each toggles one modeling term and reports how the 65nm
// failure-rate trajectory responds, quantifying that term's contribution.
package ramp_test

import (
	"sync"
	"testing"

	ramp "github.com/ramp-sim/ramp"
)

// _ablationApps is a small hot/cool subset that preserves the suite spread
// at a fraction of the full-study cost.
var _ablationApps = []string{"ammp", "mesa", "gzip", "crafty"}

const _ablationInstructions = 300_000

// ablationKey identifies a cached ablation study.
type ablationKey struct {
	name string
}

var (
	_ablationMu    sync.Mutex
	_ablationCache = map[ablationKey]*ramp.StudyResult{}
)

// runAblation runs (once per key) a reduced study with the given
// configuration and technology list.
func runAblation(b *testing.B, key string, cfg ramp.Config, techs []ramp.Technology) *ramp.StudyResult {
	b.Helper()
	_ablationMu.Lock()
	defer _ablationMu.Unlock()
	if res, ok := _ablationCache[ablationKey{key}]; ok {
		return res
	}
	var profiles []ramp.Profile
	for _, name := range _ablationApps {
		p, err := ramp.ProfileByName(name)
		if err != nil {
			b.Fatal(err)
		}
		profiles = append(profiles, p)
	}
	res, err := ramp.RunStudy(cfg, profiles, techs)
	if err != nil {
		b.Fatal(err)
	}
	_ablationCache[ablationKey{key}] = res
	return res
}

func ablationConfig() ramp.Config {
	cfg := ramp.DefaultConfig()
	cfg.Instructions = _ablationInstructions
	return cfg
}

// mechRatio65 returns mechanism m's suite-average 65nm(1.0V)/180nm ratio.
func mechRatio65(res *ramp.StudyResult, m ramp.Mechanism) float64 {
	m0 := res.SuiteAverageMech(0, 0)
	mN := res.SuiteAverageMech(len(res.Techs)-1, 0)
	return mN[m] / m0[m]
}

// BenchmarkAblationEMGeometry compares the EM trajectory with the wire
// geometry factor off (κ⁰), at the calibrated effective value (κ^1.7),
// and at the paper's literal derivation (κ²). The spread shows how much
// of the EM increase is geometry versus temperature.
func BenchmarkAblationEMGeometry(b *testing.B) {
	for _, tc := range []struct {
		name string
		exp  float64
	}{{"off", 0}, {"effective", 1.7}, {"paperLiteral", 2.0}} {
		b.Run(tc.name, func(b *testing.B) {
			cfg := ablationConfig()
			cfg.RAMP.EM.GeomExponent = tc.exp
			res := runAblation(b, "emgeom-"+tc.name, cfg, ramp.Technologies())
			for i := 0; i < b.N; i++ {
				_ = mechRatio65(res, ramp.EM)
			}
			b.ReportMetric(mechRatio65(res, ramp.EM), "x_EM_65nm")
		})
	}
}

// BenchmarkAblationTDDBTox toggles the gate-oxide thinning factor: without
// it, voltage reduction makes scaled TDDB *more* reliable — the paper's
// core TDDB finding inverts.
func BenchmarkAblationTDDBTox(b *testing.B) {
	for _, tc := range []struct {
		name   string
		decade float64
	}{{"off", 1e9}, {"default", ramp.DefaultConfig().RAMP.TDDB.ToxDecadeNm}} {
		b.Run(tc.name, func(b *testing.B) {
			cfg := ablationConfig()
			cfg.RAMP.TDDB.ToxDecadeNm = tc.decade
			res := runAblation(b, "tddbtox-"+tc.name, cfg, ramp.Technologies())
			for i := 0; i < b.N; i++ {
				_ = mechRatio65(res, ramp.TDDB)
			}
			b.ReportMetric(mechRatio65(res, ramp.TDDB), "x_TDDB_65nm")
		})
	}
}

// BenchmarkAblationTDDBVoltage toggles the cross-technology voltage
// benefit: without it the TDDB explosion at 65nm is far larger, showing
// how much relief non-ideal-but-still-falling supply voltage provides.
func BenchmarkAblationTDDBVoltage(b *testing.B) {
	for _, tc := range []struct {
		name string
		exp  float64
	}{{"off", 0}, {"default", ramp.DefaultConfig().RAMP.TDDB.VoltExponent}} {
		b.Run(tc.name, func(b *testing.B) {
			cfg := ablationConfig()
			cfg.RAMP.TDDB.VoltExponent = tc.exp
			res := runAblation(b, "tddbvolt-"+tc.name, cfg, ramp.Technologies())
			for i := 0; i < b.N; i++ {
				_ = mechRatio65(res, ramp.TDDB)
			}
			b.ReportMetric(mechRatio65(res, ramp.TDDB), "x_TDDB_65nm")
		})
	}
}

// BenchmarkAblationJmaxDerate removes the 33%-per-generation interconnect
// current-density reduction (Table 4), quantifying how much EM relief
// designers buy with it.
func BenchmarkAblationJmaxDerate(b *testing.B) {
	base := ramp.BaseTechnology()
	for _, tc := range []struct {
		name   string
		derate bool
	}{{"withDerate", true}, {"withoutDerate", false}} {
		b.Run(tc.name, func(b *testing.B) {
			techs := ramp.Technologies()
			if !tc.derate {
				for i := range techs {
					techs[i].JMaxMAum2 = base.JMaxMAum2
				}
			}
			res := runAblation(b, "jmax-"+tc.name, ablationConfig(), techs)
			for i := 0; i < b.N; i++ {
				_ = mechRatio65(res, ramp.EM)
			}
			b.ReportMetric(mechRatio65(res, ramp.EM), "x_EM_65nm")
		})
	}
}

// BenchmarkAblationPowerGating measures power gating of near-idle
// structures as a reliability mitigation at 65nm (1.0V), where leakage
// dominates idle power: integer workloads with an idle FPU recover FIT by
// removing its leakage heat.
func BenchmarkAblationPowerGating(b *testing.B) {
	for _, tc := range []struct {
		name  string
		gated bool
	}{{"off", false}, {"on", true}} {
		b.Run(tc.name, func(b *testing.B) {
			cfg := ablationConfig()
			cfg.Power.PowerGateIdle = tc.gated
			// Disable the Table 3 per-app power re-calibration: it would
			// scale dynamic power back up to the published totals and mask
			// exactly the idle power the gate removes.
			cfg.CalibrateAppPower = false
			res := runAblation(b, "gate-"+tc.name, cfg, ramp.Technologies())
			ti := len(res.Techs) - 1
			var power, tmax float64
			apps := res.AppsAt(ti)
			for _, a := range apps {
				power += a.AvgTotalW / float64(len(apps))
				tmax += a.MaxStructTempK / float64(len(apps))
			}
			for i := 0; i < b.N; i++ {
				_ = power
			}
			b.ReportMetric(power, "W_65nm")
			b.ReportMetric(tmax, "K_65nm")
			b.ReportMetric(res.SuiteAverageFIT(ti, 0)/res.SuiteAverageFIT(0, 0), "x_totalFIT_65nm")
		})
	}
}

// BenchmarkAblationIdealVoltage extends the paper's 65nm 0.9V-vs-1.0V
// split with a hypothetical ideal-scaling 0.8V point, mapping the FIT
// cost of each step of voltage-scaling shortfall.
func BenchmarkAblationIdealVoltage(b *testing.B) {
	for _, tc := range []struct {
		name string
		vdd  float64
	}{{"ideal0.8V", 0.8}, {"paper0.9V", 0.9}, {"realistic1.0V", 1.0}} {
		b.Run(tc.name, func(b *testing.B) {
			techs := ramp.Technologies()[:4] // keep 180..65nm(0.9V) slots
			t65 := techs[3]
			t65.Name = tc.name
			t65.VddV = tc.vdd
			// Leakage density tracks the Table 4 trend with voltage.
			switch tc.vdd {
			case 0.8:
				t65.LeakW383PerMm2 = 0.48
			case 1.0:
				t65.LeakW383PerMm2 = 0.60
			}
			techs[3] = t65
			res := runAblation(b, "vdd-"+tc.name, ablationConfig(), techs)
			ratio := res.SuiteAverageFIT(3, 0) / res.SuiteAverageFIT(0, 0)
			for i := 0; i < b.N; i++ {
				_ = ratio
			}
			b.ReportMetric(ratio, "x_totalFIT_65nm")
		})
	}
}
